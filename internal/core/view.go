package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"votm/internal/faultinject"
	"votm/internal/memheap"
	"votm/internal/rac"
	"votm/internal/stm"
)

// ErrViewDestroyed is returned when using a destroyed view.
var ErrViewDestroyed = errors.New("core: view destroyed")

// View is one VOTM view: a region of shared memory backed by its own TM
// instance (private metadata) and guarded by its own RAC controller. Views
// never overlap by construction — each owns a separate heap.
type View struct {
	id    int
	rt    *Runtime
	heap  *stm.Heap
	alloc *memheap.Allocator
	engh  atomic.Pointer[engineHolder]
	ctl   *rac.Controller

	// fwd is the address-forwarding table installed by Split/MergeViews;
	// nil on views that never repartitioned (see split.go).
	fwd atomic.Pointer[fwdTable]

	// hook is the per-view access hook (viewmgr affinity sampling). It is
	// only written while the view is quiesced and takes effect by rebuilding
	// the engine, so the hot path never checks it directly.
	hook faultinject.Hook

	// ltx / ltxRO are the shared lock-mode transaction handles. A lockTx is
	// immutable after construction (heap pointer + readonly flag) and lock
	// mode is exclusive by the RAC interlock, so both handles can be shared
	// by every lock-mode/escalated/Exclusive run without allocating one per
	// execution.
	ltx   lockTx
	ltxRO lockTx

	destroyed atomic.Bool
}

// engineHolder pairs an engine instance with its kind; it is swapped
// atomically by SwitchEngine, and thread descriptor caches key on the
// holder pointer so stale descriptors are never used against a new engine.
type engineHolder struct {
	kind EngineKind
	eng  stm.Engine
}

func newView(rt *Runtime, vid, sizeWords, quota int, kind EngineKind) *View {
	heap := stm.NewHeap(sizeWords)
	var onChange func(from, to int)
	if rt.cfg.QuotaTrace != nil {
		qt := rt.cfg.QuotaTrace
		onChange = func(from, to int) { qt(vid, from, to) }
	}
	v := &View{
		id:    vid,
		rt:    rt,
		heap:  heap,
		alloc: memheap.New(sizeWords),
		ctl: rac.New(rac.Params{
			Threads:          rt.cfg.Threads,
			InitialQuota:     quota,
			HighDelta:        rt.cfg.HighDelta,
			LowDelta:         rt.cfg.LowDelta,
			AdjustEvery:      rt.cfg.AdjustEvery,
			ProbeAtLockEvery: rt.cfg.ProbeAtLockEvery,
			OnQuotaChange:    onChange,
		}),
	}
	v.ltx = lockTx{heap: heap}
	v.ltxRO = lockTx{heap: heap, readonly: true}
	v.engh.Store(&engineHolder{kind: kind, eng: rt.cfg.newEngine(kind, heap)})
	return v
}

// lockBody returns the shared lock-mode handle for the requested mode.
func (v *View) lockBody(readonly bool) *lockTx {
	if readonly {
		return &v.ltxRO
	}
	return &v.ltx
}

// ID returns the view ID (vid).
func (v *View) ID() int { return v.id }

func (v *View) engine() *engineHolder { return v.engh.Load() }

// EngineName returns the TM algorithm backing this view.
func (v *View) EngineName() string { return v.engine().eng.Name() }

// Engine returns the kind of the TM algorithm backing this view.
func (v *View) Engine() EngineKind { return v.engine().kind }

// SwitchEngine replaces the view's TM algorithm at runtime — the per-view
// adaptive-TM direction the paper names as future work (§IV-C, §V). The
// view is quiesced first: new admissions are suspended and the call blocks
// until all in-flight transactions have left, then the engine (and its
// fresh metadata) is swapped in over the same heap. Committed data is
// preserved — both engines redo-log, so the heap always holds committed
// state at quiescence.
//
// SwitchEngine requires admission control (it returns an error on a
// NoAdmission runtime, which has no quiescence mechanism).
func (v *View) SwitchEngine(ctx context.Context, kind EngineKind) error {
	if v.destroyed.Load() {
		return ErrViewDestroyed
	}
	if v.rt.cfg.NoAdmission {
		return errors.New("core: SwitchEngine requires admission control")
	}
	if kind != NOrec && kind != OrecEagerRedo && kind != TL2 {
		return fmt.Errorf("core: unknown engine %q", kind)
	}
	if v.engine().kind == kind {
		return nil
	}
	if err := v.ctl.PauseAndDrain(ctx); err != nil {
		return err
	}
	v.engh.Store(&engineHolder{kind: kind, eng: v.buildEngine(kind)})
	v.ctl.Resume()
	return nil
}

// buildEngine constructs a TM instance for this view, composing the view's
// access hook (if any) with the runtime's fault hook.
func (v *View) buildEngine(kind EngineKind) stm.Engine {
	return v.rt.cfg.newEngineHooked(kind, v.heap, v.hook)
}

// SetAccessHook installs (or, with nil, removes) a per-view access hook that
// observes every transactional Load/Store/Commit — the instrumentation point
// used by viewmgr's affinity sampler. The view is quiesced and its engine
// rebuilt over the same heap, exactly like SwitchEngine: with no hook the
// engine hands out plain descriptors, so sampling off costs nothing on the
// hot path. The hook must not panic and must be safe for concurrent calls
// from multiple threads.
func (v *View) SetAccessHook(ctx context.Context, hook faultinject.Hook) error {
	if v.destroyed.Load() {
		return ErrViewDestroyed
	}
	if v.rt.cfg.NoAdmission {
		return errors.New("core: SetAccessHook requires admission control")
	}
	if err := v.ctl.PauseAndDrain(ctx); err != nil {
		return err
	}
	v.hook = hook
	kind := v.engine().kind
	v.engh.Store(&engineHolder{kind: kind, eng: v.buildEngine(kind)})
	v.ctl.Resume()
	return nil
}

// Alloc implements malloc_block(vid, size): it reserves words words of the
// view's memory and returns the block's base address.
func (v *View) Alloc(words int) (stm.Addr, error) {
	if v.destroyed.Load() {
		return 0, ErrViewDestroyed
	}
	return v.alloc.Alloc(words)
}

// AllocBatch is malloc_block over a whole group: one block per entry of
// sizes, all carved out under a single allocator lock acquisition,
// appended to dst. All-or-nothing on failure.
func (v *View) AllocBatch(sizes []int, dst []stm.Addr) ([]stm.Addr, error) {
	if v.destroyed.Load() {
		return dst, ErrViewDestroyed
	}
	return v.alloc.AllocBatch(sizes, dst)
}

// Free implements free_block(vid, ptr).
func (v *View) Free(addr stm.Addr) error {
	if v.destroyed.Load() {
		return ErrViewDestroyed
	}
	return v.alloc.Free(addr)
}

// FreeBatch is free_block over a whole group's effect list: every block in
// addrs is released under a single allocator lock acquisition.
func (v *View) FreeBatch(addrs []stm.Addr) error {
	if len(addrs) == 0 {
		return nil
	}
	if v.destroyed.Load() {
		return ErrViewDestroyed
	}
	return v.alloc.FreeBatch(addrs)
}

// Brk implements brk_view(vid, size): it expands the view's memory by words
// words. Growth is safe concurrently with running transactions.
func (v *View) Brk(words int) error {
	if v.destroyed.Load() {
		return ErrViewDestroyed
	}
	if words < 0 {
		return fmt.Errorf("core: negative brk %d", words)
	}
	v.heap.Grow(words)
	v.alloc.Grow(words)
	return nil
}

// Size returns the view's current size in words.
func (v *View) Size() int { return v.heap.Len() }

// Quota returns the view's current admission quota Q.
func (v *View) Quota() int { return v.ctl.Quota() }

// SetQuota sets the view's admission quota manually.
func (v *View) SetQuota(q int) { v.ctl.SetQuota(q) }

// SettledQuota returns the quota the adaptive policy spent the most time at.
func (v *View) SettledQuota() int { return v.ctl.SettledQuota() }

// QuotaMoves returns how many adaptive quota changes have occurred.
func (v *View) QuotaMoves() int64 { return v.ctl.QuotaMoves() }

// Totals returns the view's cumulative transaction statistics.
func (v *View) Totals() rac.Totals { return v.ctl.Totals() }

// Controller exposes the RAC controller (tests and the harness).
func (v *View) Controller() *rac.Controller { return v.ctl }

// Heap exposes the underlying word heap (tests and lock-free inspection;
// reading it while transactions run sees committed state plus in-flight
// lock-mode writes).
func (v *View) Heap() *stm.Heap { return v.heap }

// Atomic implements the acquire_view/release_view pair: it admits the
// calling thread under RAC, runs fn transactionally, and commits on return.
// If the commit fails or a conflict unwinds fn, the attempt is rolled back
// and fn re-executed after re-admission (the paper's release_view step 1).
//
// If fn returns a non-nil error the transaction is rolled back (in TM mode)
// and the error returned without retry. In lock mode (Q == 1) there is no
// rollback machinery — writes already performed by fn remain, matching the
// paper's lock-based fallback.
//
// ctx cancels waiting and retrying; a cancelled attempt returns ctx.Err().
func (v *View) Atomic(ctx context.Context, th *Thread, fn func(Tx) error) error {
	return v.atomic(ctx, th, fn, false)
}

// AtomicRead implements acquire_Rview/release_view: like Atomic but the
// transaction is read-only; Store panics.
func (v *View) AtomicRead(ctx context.Context, th *Thread, fn func(Tx) error) error {
	return v.atomic(ctx, th, fn, true)
}

// AtomicGroup is Atomic for group-commit execution: fn performs ops
// independent logical operations inside one admission and one transaction,
// amortizing the per-transaction overhead (RAC Enter/Exit, begin/commit; at
// Q == 1 a single lock acquisition) across the group. Retry, escalation and
// panic semantics are exactly Atomic's — a conflict re-executes the whole
// group — and a committed group is additionally accounted in the view's
// Totals (Groups++, GroupOps += ops) so mean group size is observable.
//
// The lock-mode caveat sharpens for groups: at Q == 1 there is no rollback,
// so fn must not return a non-nil error after its first write — per-item
// failures should be recorded in fn's own results, not surfaced as an
// aborting error.
func (v *View) AtomicGroup(ctx context.Context, th *Thread, ops int, fn func(Tx) error) error {
	err := v.atomic(ctx, th, fn, false)
	if err == nil {
		v.ctl.RecordGroup(int64(ops))
	}
	return err
}

// AtomicReadGroup is AtomicGroup with read-only semantics (Store panics).
func (v *View) AtomicReadGroup(ctx context.Context, th *Thread, ops int, fn func(Tx) error) error {
	err := v.atomic(ctx, th, fn, true)
	if err == nil {
		v.ctl.RecordGroup(int64(ops))
	}
	return err
}

// attemptOutcome classifies one TM-mode transaction attempt.
type attemptOutcome int

const (
	attemptCommitted attemptOutcome = iota
	attemptConflict                 // body unwound by a conflict or commit lost: retry
	attemptUserErr                  // fn returned an error: rolled back, no retry
)

func (v *View) atomic(ctx context.Context, th *Thread, fn func(Tx) error, readonly bool) error {
	if th == nil {
		return errors.New("core: nil thread handle")
	}
	conflicts := 0
	for {
		if v.destroyed.Load() {
			return ErrViewDestroyed
		}
		if err := ctx.Err(); err != nil {
			return err
		}

		// Retry budget exhausted: escalate to an irrevocable exclusive
		// execution instead of another optimistic attempt, bounding
		// starvation under kill/steal contention management.
		if k := v.rt.cfg.MaxConflictRetries; k > 0 && conflicts >= k && !v.rt.cfg.NoAdmission {
			return v.runEscalated(ctx, th, fn, readonly)
		}

		mode := rac.ModeTM
		if v.rt.cfg.NoAdmission {
			// multi-TM / plain-TM baselines: no admission control at all.
		} else {
			var err error
			mode, err = v.ctl.Enter(ctx)
			if err != nil {
				if errors.Is(err, rac.ErrClosed) {
					return ErrViewDestroyed
				}
				return err
			}
		}
		start := time.Now()

		if mode == rac.ModeLock {
			return v.runLock(th, fn, readonly, start)
		}

		outcome, err := v.attemptTM(th, fn, readonly, mode, start)
		switch outcome {
		case attemptCommitted:
			return nil
		case attemptUserErr:
			return err
		default:
			conflicts++
			th.backoff(ctx, conflicts)
		}
	}
}

// attemptTM runs one optimistic attempt on the view's STM engine. It is
// panic-safe: a user panic unwinding out of the body (or out of the engine's
// commit path) rolls the transaction back and releases the admission slot
// before continuing to unwind, so a crashing body can never leak orec locks
// or shrink the view's effective quota.
func (v *View) attemptTM(th *Thread, fn func(Tx) error, readonly bool, mode rac.Mode, start time.Time) (attemptOutcome, error) {
	tx := th.tx(v)
	tx.Begin()
	settled := false
	defer func() {
		if !settled {
			// A panic is unwinding through us (injected fault at commit, or
			// an engine invariant violation): roll back, account the
			// attempt, release admission, and let the panic continue with
			// its original value and stack.
			tx.Abort()
			v.ctl.RecordPanic()
			v.exit(mode, rac.Aborted, start)
		}
	}()
	if h := v.rt.cfg.FaultHook; h != nil {
		h(faultinject.OpAdmit, th.id, 0)
	}
	var body Tx = tx
	if readonly {
		// Reuse the thread's read-only wrapper: a Thread is single-goroutine
		// by contract, so one cached roTx per thread suffices and the
		// steady-state AtomicRead path allocates nothing.
		th.ro.inner = tx
		body = &th.ro
	}
	body = v.guardBody(body)
	var userErr error
	conflicted, up := stm.CatchBody(func() { userErr = fn(body) })
	switch {
	case up != nil:
		if mp, ok := up.Value.(movedPanic); ok {
			// Forwarding guard tripped: the address moved to another view.
			// Roll back and surface the typed error — not a user bug, so it
			// is not accounted as a panic.
			tx.Abort()
			settled = true
			v.exit(mode, rac.Aborted, start)
			return attemptUserErr, mp.err
		}
		// User panic inside the body: roll back, release admission, then
		// re-raise the original panic value.
		tx.Abort()
		settled = true
		v.ctl.RecordPanic()
		v.exit(mode, rac.Aborted, start)
		up.Rethrow()
		return attemptConflict, nil // unreachable
	case conflicted:
		tx.Abort()
		settled = true
		v.exit(mode, rac.Aborted, start)
		return attemptConflict, nil
	case userErr != nil:
		tx.Abort()
		settled = true
		v.exit(mode, rac.Aborted, start)
		return attemptUserErr, userErr
	case tx.Commit():
		settled = true
		v.exit(mode, rac.Committed, start)
		return attemptCommitted, nil
	default:
		settled = true
		v.exit(mode, rac.Aborted, start)
		return attemptConflict, nil
	}
}

// runLock executes fn in uninstrumented lock mode (admitted at Q == 1).
// There is no rollback machinery: writes performed before an error or a
// panic remain in the heap, matching the paper's lock-based fallback. The
// admission slot is always released — a panicking body keeps unwinding with
// its original value and stack after release, and an error is accounted as
// an aborted attempt so δ(Q) is not skewed by failed lock-mode runs.
func (v *View) runLock(th *Thread, fn func(Tx) error, readonly bool, start time.Time) (err error) {
	settled := false
	defer func() {
		if !settled {
			v.ctl.RecordPanic()
			v.exit(rac.ModeLock, rac.Aborted, start)
		}
	}()
	if h := v.rt.cfg.FaultHook; h != nil {
		h(faultinject.OpAdmit, th.id, 0)
	}
	err = callGuarded(fn, v.guardBody(v.lockBody(readonly)))
	settled = true
	outcome := rac.Committed
	if err != nil {
		outcome = rac.Aborted
	}
	v.exit(rac.ModeLock, outcome, start)
	return err
}

// runEscalated is the starvation escape hatch: it drains the view's
// admissions, runs fn exactly once with exclusive Q = 1 semantics
// (uninstrumented, irrevocable — it cannot conflict), then resumes
// admissions. Like lock mode there is no rollback: writes before an error
// or panic remain. The pause is always released, even if fn panics.
func (v *View) runEscalated(ctx context.Context, th *Thread, fn func(Tx) error, readonly bool) (err error) {
	if err := v.ctl.PauseAndDrain(ctx); err != nil {
		return err
	}
	start := time.Now()
	settled := false
	defer func() {
		if !settled {
			v.ctl.RecordPanic()
			v.ctl.RecordEscalated(rac.Aborted, time.Since(start))
		}
		v.ctl.Resume()
	}()
	if h := v.rt.cfg.FaultHook; h != nil {
		h(faultinject.OpAdmit, th.id, 0)
	}
	err = callGuarded(fn, v.guardBody(v.lockBody(readonly)))
	settled = true
	outcome := rac.Committed
	if err != nil {
		outcome = rac.Aborted
	}
	v.ctl.RecordEscalated(outcome, time.Since(start))
	return err
}

func (v *View) exit(mode rac.Mode, outcome rac.Outcome, start time.Time) {
	d := time.Since(start)
	if v.rt.cfg.NoAdmission {
		v.ctl.Record(outcome, d)
		return
	}
	v.ctl.Exit(mode, outcome, d)
}
