package core

import (
	"sort"

	"votm/internal/rac"
)

// ViewSnapshot is a point-in-time statistics snapshot of one view: the raw
// material for metrics exporters, the votmd STATS operation and the
// evaluation tables. It bundles everything previously scattered across
// View.Totals/Quota/SettledQuota/QuotaMoves so callers do not reach into
// internal/rac piecemeal (and so the fields are read coherently).
type ViewSnapshot struct {
	ViewID int
	Engine EngineKind

	// Quota is the current admission quota Q; SettledQuota is the quota the
	// adaptive policy spent the most time at. EffectiveQuota is the one the
	// paper's tables report: SettledQuota when the view is adaptive, the
	// (static) current quota otherwise.
	Quota          int
	SettledQuota   int
	EffectiveQuota int
	Adaptive       bool
	QuotaMoves     int64
	InFlight       int

	// Totals are the cumulative per-view transaction statistics.
	Totals rac.Totals
	// Delta is Equation 5's δ(Q) evaluated over Totals at EffectiveQuota
	// (NaN when EffectiveQuota <= 1, the paper's "N/A" cells).
	Delta float64
}

// Snapshot returns the view's statistics snapshot. The individual fields are
// read under the controller's lock but the snapshot as a whole is not
// atomic with respect to concurrently completing transactions; for a
// monitoring read that is the right trade.
func (v *View) Snapshot() ViewSnapshot {
	ctl := v.ctl
	s := ViewSnapshot{
		ViewID:       v.id,
		Engine:       v.engine().kind,
		Quota:        ctl.Quota(),
		SettledQuota: ctl.SettledQuota(),
		Adaptive:     ctl.Adaptive(),
		QuotaMoves:   ctl.QuotaMoves(),
		InFlight:     ctl.InFlight(),
		Totals:       ctl.Totals(),
	}
	s.EffectiveQuota = s.Quota
	if s.Adaptive {
		s.EffectiveQuota = s.SettledQuota
	}
	s.Delta = s.Totals.Delta(s.EffectiveQuota)
	return s
}

// Snapshot returns a statistics snapshot of every live view, ordered by
// view ID.
func (r *Runtime) Snapshot() []ViewSnapshot {
	views := r.Views()
	out := make([]ViewSnapshot, 0, len(views))
	for _, v := range views {
		out = append(out, v.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ViewID < out[j].ViewID })
	return out
}
