package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recoverFrom runs fn and returns the panic value it unwound with (nil if
// it returned normally).
func recoverFrom(fn func()) (r any) {
	defer func() { r = recover() }()
	fn()
	return nil
}

// TestPanicInBodyAllEngines is the tentpole regression: a user panic inside
// Atomic must surface with its original value, the attempt must be rolled
// back and counted as aborted, and the view must stay fully usable — no
// leaked admission slots, no leaked orec locks.
func TestPanicInBodyAllEngines(t *testing.T) {
	for _, kind := range []EngineKind{NOrec, OrecEagerRedo, TL2} {
		t.Run(string(kind), func(t *testing.T) {
			ctx := context.Background()
			rt := NewRuntime(Config{Threads: 4, Engine: kind})
			v, err := rt.CreateView(1, 16, 4)
			if err != nil {
				t.Fatal(err)
			}
			th := rt.RegisterThread()

			boom := fmt.Sprintf("boom-%s", kind)
			r := recoverFrom(func() {
				_ = v.Atomic(ctx, th, func(tx Tx) error {
					// Store first so encounter-time engines hold an orec
					// lock at the moment of the crash.
					tx.Store(0, 42)
					panic(boom)
				})
			})
			if r != boom {
				t.Fatalf("recovered %v, want %q", r, boom)
			}
			if got := v.Controller().InFlight(); got != 0 {
				t.Fatalf("InFlight = %d after panic, want 0 (leaked slot)", got)
			}
			tot := v.Totals()
			if tot.Panics != 1 || tot.Aborts != 1 || tot.Commits != 0 {
				t.Fatalf("totals = %+v, want 1 panic, 1 abort, 0 commits", tot)
			}

			// A different thread (fresh descriptor) must be able to write
			// the same word: proves the panicking attempt released its
			// engine-side locks and rolled its redo log back.
			th2 := rt.RegisterThread()
			cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			if err := v.Atomic(cctx, th2, func(tx Tx) error {
				tx.Store(0, 7)
				return nil
			}); err != nil {
				t.Fatalf("view unusable after panic: %v", err)
			}
			var got uint64
			_ = v.AtomicRead(ctx, th2, func(tx Tx) error {
				got = tx.Load(0)
				return nil
			})
			if got != 7 {
				t.Fatalf("word = %d, want 7 (panicking store must not survive)", got)
			}
			// And the original thread's descriptor is reusable too.
			if err := v.Atomic(cctx, th, func(tx Tx) error {
				tx.Store(1, tx.Load(0))
				return nil
			}); err != nil {
				t.Fatalf("panicking thread's descriptor unusable: %v", err)
			}
		})
	}
}

// TestPanicInLockMode covers the uninstrumented Q == 1 path: the admission
// slot (and the lock-mode interlock) must be released before the panic
// continues, or the view is wedged forever.
func TestPanicInLockMode(t *testing.T) {
	ctx := context.Background()
	rt := NewRuntime(Config{Threads: 2})
	v, err := rt.CreateView(1, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	th := rt.RegisterThread()

	r := recoverFrom(func() {
		_ = v.Atomic(ctx, th, func(tx Tx) error {
			_ = tx.Load(0) // panic before any store: lock mode has no rollback
			panic("lock-boom")
		})
	})
	if r != "lock-boom" {
		t.Fatalf("recovered %v, want lock-boom", r)
	}
	if got := v.Controller().InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	tot := v.Totals()
	if tot.Panics != 1 || tot.Aborts != 1 {
		t.Fatalf("totals = %+v, want 1 panic / 1 abort", tot)
	}
	// Another thread must be admitted (lockActive was cleared).
	th2 := rt.RegisterThread()
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := v.Atomic(cctx, th2, func(tx Tx) error {
		tx.Store(0, 1)
		return nil
	}); err != nil {
		t.Fatalf("lock-mode view wedged after panic: %v", err)
	}
}

// TestPanicInReadOnlyBody covers AtomicRead.
func TestPanicInReadOnlyBody(t *testing.T) {
	ctx := context.Background()
	rt := NewRuntime(Config{Threads: 2, Engine: TL2})
	v, _ := rt.CreateView(1, 8, 2)
	th := rt.RegisterThread()
	wantErr := errors.New("read-boom")
	r := recoverFrom(func() {
		_ = v.AtomicRead(ctx, th, func(tx Tx) error {
			_ = tx.Load(3)
			panic(wantErr)
		})
	})
	if r != wantErr {
		t.Fatalf("recovered %v, want %v", r, wantErr)
	}
	if err := v.Atomic(ctx, th, func(tx Tx) error { tx.Store(3, 9); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestSwitchEngineSurvivesPanickingTransactions: the quiescence drain must
// complete even while bodies crash left and right — a panicking transaction
// that leaked its admission slot would hang the switch forever.
func TestSwitchEngineSurvivesPanickingTransactions(t *testing.T) {
	ctx := context.Background()
	rt := NewRuntime(Config{Threads: 4})
	v, err := rt.CreateView(1, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = recoverFrom(func() {
					_ = v.Atomic(ctx, th, func(tx Tx) error {
						tx.Store(0, tx.Load(0)+1)
						panic("die")
					})
				})
			}
		}()
	}
	kinds := []EngineKind{TL2, OrecEagerRedo, NOrec}
	for i := 0; i < 12; i++ {
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := v.SwitchEngine(sctx, kinds[i%len(kinds)])
		cancel()
		if err != nil {
			t.Fatalf("switch %d (%s): %v", i, kinds[i%len(kinds)], err)
		}
	}
	close(stop)
	wg.Wait()
	if got := v.Controller().InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
}

// TestDestroyViewSurvivesPanickingTransactions: destroying a view while
// bodies panic must not wedge anything; blocked admissions wake up with
// ErrViewDestroyed.
func TestDestroyViewSurvivesPanickingTransactions(t *testing.T) {
	ctx := context.Background()
	rt := NewRuntime(Config{Threads: 4})
	v, err := rt.CreateView(7, 8, 1) // Q = 1: admissions genuinely queue
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < 200; i++ {
				var err error
				_ = recoverFrom(func() {
					err = v.Atomic(ctx, th, func(tx Tx) error {
						if i%3 == 0 {
							panic("destroy-chaos")
						}
						tx.Store(0, tx.Load(0)+1)
						return nil
					})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	if err := rt.DestroyView(7); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("workers wedged after DestroyView")
	}
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrViewDestroyed) {
			t.Errorf("worker error = %v, want ErrViewDestroyed", err)
		}
	}
	th := rt.RegisterThread()
	if err := v.Atomic(ctx, th, func(Tx) error { return nil }); !errors.Is(err, ErrViewDestroyed) {
		t.Errorf("Atomic on destroyed view = %v, want ErrViewDestroyed", err)
	}
}
