package racsim

import (
	"testing"
	"time"

	"votm/internal/rac"
	"votm/internal/theory"
)

func TestWorkloadDeltas(t *testing.T) {
	if d := Hot(16).Delta(16); d <= 1 {
		t.Errorf("Hot δ = %v, want > 1", d)
	}
	if d := Cold(16).Delta(16); d >= 1 {
		t.Errorf("Cold δ = %v, want < 1", d)
	}
}

func TestHotConvergesToLockMode(t *testing.T) {
	// The controller, fed model-hot outcomes, must throttle to the
	// theory-optimal quota (1 for a hot workload).
	w := Hot(16)
	res := Run(Config{Threads: 16, Rounds: 200, Seed: 1}, w)
	set := theory.Set{{C: w.C, D: w.D.Seconds(), T: w.T.Seconds()}}
	if opt := theory.OptimalQ(set, 16); opt != 1 {
		t.Fatalf("model optimum = %d, expected 1 for the hot workload", opt)
	}
	if res.SettledQuota != 1 {
		t.Errorf("settled quota = %d, want 1 (moves: %d)", res.SettledQuota, res.QuotaMoves)
	}
	if res.Commits != 16*200 {
		t.Errorf("commits = %d, want %d", res.Commits, 16*200)
	}
}

func TestColdStaysAtN(t *testing.T) {
	w := Cold(16)
	res := Run(Config{Threads: 16, Rounds: 200, Seed: 2}, w)
	set := theory.Set{{C: w.C, D: w.D.Seconds(), T: w.T.Seconds()}}
	if opt := theory.OptimalQ(set, 16); opt != 16 {
		t.Fatalf("model optimum = %d, expected 16 for the cold workload", opt)
	}
	if res.SettledQuota != 16 {
		t.Errorf("settled quota = %d, want 16 (moves: %d)", res.SettledQuota, res.QuotaMoves)
	}
	if res.QuotaMoves != 0 {
		t.Errorf("cold workload moved the quota %d times", res.QuotaMoves)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Run(Config{Threads: 8, Rounds: 100, Seed: 7}, Hot(8))
	b := Run(Config{Threads: 8, Rounds: 100, Seed: 7}, Hot(8))
	if a.Commits != b.Commits || a.Aborts != b.Aborts || a.VirtualTime != b.VirtualTime {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	c := Run(Config{Threads: 8, Rounds: 100, Seed: 8}, Hot(8))
	if a.Aborts == c.Aborts && a.VirtualTime == c.VirtualTime {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestVirtualTimeHotBeatsUnthrottled(t *testing.T) {
	// The makespan claim behind Observation 1: total attempt time with the
	// adaptive controller must be far below the fixed Q=N run on a hot
	// workload.
	w := Hot(16)
	adaptive := Run(Config{Threads: 16, Rounds: 150, Seed: 3}, w)
	fixed := Run(Config{Threads: 16, Rounds: 150, Seed: 3, Quota: 16, AdjustEvery: 1 << 60}, w)
	if adaptive.VirtualTime*2 >= fixed.VirtualTime {
		t.Errorf("adaptive virtual time %v not ≪ fixed-Q16 %v",
			adaptive.VirtualTime, fixed.VirtualTime)
	}
	if fixed.Aborts <= adaptive.Aborts {
		t.Errorf("fixed Q=N aborts %d <= adaptive aborts %d", fixed.Aborts, adaptive.Aborts)
	}
}

func TestLockModeCommitsEverything(t *testing.T) {
	res := Run(Config{Threads: 4, Rounds: 50, Seed: 4, Quota: 1, AdjustEvery: 1 << 60}, Hot(4))
	if res.Aborts != 0 {
		t.Errorf("lock mode aborted %d times", res.Aborts)
	}
	if res.Commits != 200 {
		t.Errorf("commits = %d", res.Commits)
	}
}

func TestFixedMidQuota(t *testing.T) {
	// A fixed mid quota must produce an abort count close to the model's
	// c(Q)·commits expectation.
	w := Hot(16) // C = 64
	const q = 4
	res := Run(Config{Threads: 16, Rounds: 100, Seed: 5, Quota: q, AdjustEvery: 1 << 60}, w)
	cq := w.C * float64(q-1) / 15.0 // = 12.8 expected aborts per commit
	wantAborts := cq * float64(res.Commits)
	ratio := float64(res.Aborts) / wantAborts
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("aborts = %d, model expects ≈ %.0f (ratio %.2f)", res.Aborts, wantAborts, ratio)
	}
}

// InteriorOptimal returns a super-linear-conflict workload whose
// per-commit makespan cost (c(q)·D+T)/q is minimized strictly between 1
// and N — the §IV-B regime.
func interiorOptimal() Workload {
	return Workload{C: 60, D: time.Millisecond, T: time.Millisecond, Exponent: 3}
}

func TestInteriorOptimumExists(t *testing.T) {
	// Sanity-check the workload shape: the per-commit makespan cost is
	// lower at some interior q than at both extremes.
	w := interiorOptimal()
	cost := func(q int) float64 {
		scale := float64(q-1) / 15.0
		cq := w.C * scale * scale * scale
		return (cq*float64(w.D) + float64(w.T)) / float64(q)
	}
	c1, c4, c16 := cost(1), cost(4), cost(16)
	if !(c4 < c1 && c4 < c16) {
		t.Fatalf("no interior optimum: cost(1)=%v cost(4)=%v cost(16)=%v", c1, c4, c16)
	}
}

func TestRACBeatsLockElisionAtInteriorOptimum(t *testing.T) {
	// The paper's §IV-B claim: adaptive locks / SLE choose only between
	// Q=1 and Q=N, so when the optimal quota is interior, RAC's
	// halve/double search wins on makespan.
	w := interiorOptimal()
	const rounds = 400
	racRes := Run(Config{Threads: 16, Rounds: rounds, Seed: 11}, w)
	sleRes := Run(Config{Threads: 16, Rounds: rounds, Seed: 11, Policy: rac.LockElision}, w)

	if racRes.SettledQuota <= 1 || racRes.SettledQuota >= 16 {
		t.Errorf("RAC settled at an extreme: Q=%d", racRes.SettledQuota)
	}
	if sleRes.SettledQuota != 1 && sleRes.SettledQuota != 16 {
		t.Errorf("lock elision settled at interior Q=%d — not two-extremes behaviour",
			sleRes.SettledQuota)
	}
	if racRes.VirtualMakespan >= sleRes.VirtualMakespan {
		t.Errorf("RAC makespan %v not better than lock-elision %v (RAC Q=%d, SLE Q=%d)",
			racRes.VirtualMakespan, sleRes.VirtualMakespan,
			racRes.SettledQuota, sleRes.SettledQuota)
	}
	t.Logf("RAC: Q=%d makespan=%v; lock-elision: Q=%d makespan=%v (%.0f%% slower)",
		racRes.SettledQuota, racRes.VirtualMakespan,
		sleRes.SettledQuota, sleRes.VirtualMakespan,
		100*(float64(sleRes.VirtualMakespan)/float64(racRes.VirtualMakespan)-1))
}

func TestLockElisionMatchesRACAtExtremes(t *testing.T) {
	// On the paper's *linear* model the optimum is an extreme, so the two
	// policies should land on the same quota for hot and cold workloads.
	for name, w := range map[string]Workload{"hot": Hot(16), "cold": Cold(16)} {
		r := Run(Config{Threads: 16, Rounds: 150, Seed: 21}, w)
		s := Run(Config{Threads: 16, Rounds: 150, Seed: 21, Policy: rac.LockElision}, w)
		if r.SettledQuota != s.SettledQuota {
			t.Errorf("%s: RAC Q=%d vs elision Q=%d", name, r.SettledQuota, s.SettledQuota)
		}
	}
}
