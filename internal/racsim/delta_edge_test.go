package racsim_test

import (
	"math"
	"testing"
	"time"

	"votm/internal/rac"
	"votm/internal/racsim"
	"votm/internal/theory"
)

// TestDeltaQEdgeUnified pins the Eq. 5 edge behaviour across every δ
// implementation in the repo: at Q = 1 the quantity is undefined (division
// by Q−1) and all paths must return the same sentinel, NaN — never +Inf,
// which would order above every real δ and read as "maximally contended".
func TestDeltaQEdgeUnified(t *testing.T) {
	const n = 8 // the paper's N
	w := racsim.Workload{C: 0.5, D: time.Millisecond, T: 4 * time.Millisecond}
	totals := rac.Totals{
		Commits: 100, Aborts: 50,
		SuccessNs: int64(100 * time.Millisecond),
		AbortNs:   int64(50 * time.Millisecond),
	}

	cases := []struct {
		q       int
		defined bool
	}{
		{q: 1, defined: false},
		{q: 2, defined: true},
		{q: n, defined: true},
	}
	for _, tc := range cases {
		// Runtime estimate (Eq. 5 over measured cycle totals).
		got := totals.Delta(tc.q)
		// Closed-form theory version of the same equation.
		th := theory.DeltaQ(float64(totals.AbortNs), float64(totals.SuccessNs), tc.q)
		// Model workload δ with q concurrent threads.
		sim := w.Delta(tc.q)

		if tc.defined {
			want := float64(totals.AbortNs) / (float64(totals.SuccessNs) * float64(tc.q-1))
			if got != want {
				t.Errorf("Totals.Delta(%d) = %v, want %v", tc.q, got, want)
			}
			if th != want {
				t.Errorf("theory.DeltaQ(Q=%d) = %v, want %v", tc.q, th, want)
			}
			wantSim := w.C * float64(w.D) / (float64(w.T) * float64(tc.q-1))
			if sim != wantSim {
				t.Errorf("Workload.Delta(%d) = %v, want %v", tc.q, sim, wantSim)
			}
			if math.IsInf(sim, 0) || math.IsNaN(sim) {
				t.Errorf("Workload.Delta(%d) = %v, want finite", tc.q, sim)
			}
		} else {
			for name, v := range map[string]float64{
				"Totals.Delta":   got,
				"theory.DeltaQ":  th,
				"Workload.Delta": sim,
			} {
				if !math.IsNaN(v) {
					t.Errorf("%s at Q=%d = %v, want the NaN sentinel", name, tc.q, v)
				}
			}
		}
	}

	// Degenerate inputs also take the sentinel, not Inf.
	if v := (rac.Totals{}).Delta(4); !math.IsNaN(v) {
		t.Errorf("empty Totals.Delta(4) = %v, want NaN", v)
	}
	if v := (racsim.Workload{}).Delta(4); !math.IsNaN(v) {
		t.Errorf("zero Workload.Delta(4) = %v, want NaN", v)
	}
	if v := theory.DeltaQ(1, 0, 4); !math.IsNaN(v) {
		t.Errorf("theory.DeltaQ with no successful cycles = %v, want NaN", v)
	}
}
