// Package racsim is a discrete-event simulator that drives the *real* RAC
// controller with synthetic workloads drawn from the paper's analytical
// model (Section II-A): each transaction has a conflict-free duration t, an
// abort probability that grows with the number of concurrently admitted
// transactions (the (Q−1)/(N−1) scaling of Equation 2), and an abort cost d.
//
// It closes the loop between internal/theory (the algebra) and internal/rac
// (the engineering): for a model-hot workload the adaptive controller must
// converge near theory.OptimalQ — i.e. throttle to the bottom — and for a
// model-cold workload it must open up to N. The simulator uses virtual
// durations (passed to Exit) rather than wall time, so the convergence
// tests are fast and deterministic given a seed.
package racsim

import (
	"context"
	"math"
	"math/rand"
	"time"

	"votm/internal/rac"
)

// Workload parameterizes the synthetic transaction population, mirroring
// theory.Tx: C is the expected number of aborts a transaction would suffer
// with all N threads admitted, D the virtual duration of one aborted
// attempt, T the conflict-free duration.
type Workload struct {
	C float64
	D time.Duration
	T time.Duration
	// Exponent shapes how the expected abort count grows with admitted
	// concurrency: c(q) = C·((q−1)/(N−1))^Exponent. 1 (or 0, the zero
	// value) is the paper's linear model; >1 models super-linear conflict
	// growth (lock convoys, validation storms), which creates quotas whose
	// optimum lies strictly between 1 and N — the §IV-B regime where RAC
	// beats adaptive locks.
	Exponent float64
}

// Hot returns a workload whose model δ = C·D/(T·(N−1)) is well above 1 for
// the given N.
func Hot(n int) Workload {
	return Workload{C: 4 * float64(n), D: time.Millisecond, T: time.Millisecond}
}

// Cold returns a workload whose model δ is well below 1 for the given N.
func Cold(n int) Workload {
	return Workload{C: 0.05, D: time.Millisecond, T: 4 * time.Millisecond}
}

// Delta returns the workload's model contention ratio δ for N threads
// (the paper's δ = Σc·d / (Σt·(N−1)) with identical transactions).
//
// Eq. 5 is undefined at N ≤ 1 — there is no concurrency to contend with —
// and this returns NaN, the sentinel every δ path in the repo shares
// (rac.Totals.Delta, theory.DeltaQ; the paper's "N/A" cells). It used to
// return +Inf here, which ordered *above* every real δ and silently read
// as "maximally contended" in comparisons.
func (w Workload) Delta(n int) float64 {
	if n <= 1 || w.T == 0 {
		return math.NaN()
	}
	return w.C * float64(w.D) / (float64(w.T) * float64(n-1))
}

// Result summarizes a simulation run.
type Result struct {
	Commits     int64
	Aborts      int64
	VirtualTime time.Duration // Σ attempt durations across all threads
	// VirtualMakespan is Σ duration/Q — each attempt's duration divided by
	// the quota in force, i.e. the model's parallel completion time
	// (Equation 2's denominator applied pointwise).
	VirtualMakespan time.Duration
	SettledQuota    int
	QuotaMoves      int64
}

// Config tunes a simulation.
type Config struct {
	Threads     int
	Rounds      int   // committed transactions per thread
	Seed        int64 // rng seed (deterministic runs)
	AdjustEvery int64 // controller window (default 64)
	Quota       int   // initial quota; <1 ⇒ adaptive
	// Policy selects the adaptive rule (RAC halve/double vs the §IV-B
	// adaptive-lock baseline that only uses Q ∈ {1, N}).
	Policy rac.Policy
	// Probe forwards to rac.Params.ProbeAtLockEvery; 0 keeps probing
	// disabled (sticky lock mode) so settled quotas are deterministic.
	Probe int
}

// Run simulates cfg.Threads logical threads executing the workload under a
// real rac.Controller. The logical threads take turns on one goroutine, so
// runs are deterministic for a given seed; concurrency enters the model
// through Equation 2's (Q−1)/(N−1) abort-probability scaling rather than
// through the Go scheduler — only concurrently admitted transactions can
// conflict.
func Run(cfg Config, w Workload) Result {
	if cfg.AdjustEvery == 0 {
		cfg.AdjustEvery = 64
	}
	probe := cfg.Probe
	if probe == 0 {
		probe = -1 // sticky: convergence tests want the settled value
	}
	ctl := rac.New(rac.Params{
		Threads:          cfg.Threads,
		InitialQuota:     cfg.Quota,
		AdjustEvery:      cfg.AdjustEvery,
		ProbeAtLockEvery: probe,
		Policy:           cfg.Policy,
	})
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res Result
	type thread struct{ remaining int }
	threads := make([]thread, cfg.Threads)
	for i := range threads {
		threads[i].remaining = cfg.Rounds
	}

	// Round-robin over logical threads; each step is one admitted attempt.
	active := cfg.Threads
	for active > 0 {
		for i := range threads {
			if threads[i].remaining == 0 {
				continue
			}
			mode, err := ctl.Enter(context.Background())
			if err != nil {
				return res
			}
			q := ctl.Quota()
			scale := 0.0
			if cfg.Threads > 1 {
				scale = float64(q-1) / float64(cfg.Threads-1)
			}
			// The model's expected abort count at quota q is
			// c(q) = C·((q−1)/(N−1))^e (Equation 2's scaling, optionally
			// super-linear); a geometric attempt process with per-attempt
			// abort probability p = c/(c+1) has exactly that expectation.
			e := w.Exponent
			if e == 0 {
				e = 1
			}
			cq := w.C * math.Pow(scale, e)
			p := cq / (cq + 1)
			if mode == rac.ModeLock {
				p = 0 // exclusive: conflicts impossible
			}
			if rng.Float64() < p {
				ctl.Exit(mode, rac.Aborted, w.D)
				res.Aborts++
				res.VirtualTime += w.D
				res.VirtualMakespan += w.D / time.Duration(q)
				// The thread retries the same transaction next round.
			} else {
				ctl.Exit(mode, rac.Committed, w.T)
				res.Commits++
				res.VirtualTime += w.T
				res.VirtualMakespan += w.T / time.Duration(q)
				threads[i].remaining--
				if threads[i].remaining == 0 {
					active--
				}
			}
		}
	}
	res.SettledQuota = ctl.SettledQuota()
	res.QuotaMoves = ctl.QuotaMoves()
	return res
}
