// WAL streaming: the pieces replication is built from. A shard leader tees
// appended batch frames (Options.Tee) to its followers; a follower appends
// the received frames verbatim with AppendFrames — so leader and follower
// logs are byte-identical — and applies their records via DecodeFrames. A
// handoff install wipes the target's log with Reset before the snapshot
// ships.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// ErrFrameGap is returned by AppendFrames when a frame's sequence does not
// extend the log: the sender and receiver disagree on the stream position
// and the receiver must report its NextSeq so the sender can re-sync.
var ErrFrameGap = errors.New("wal: frame sequence does not extend the log")

// DecodeFrames walks b — a concatenation of encoded batch frames, exactly
// as Options.Tee observes them — calling fn for every batch. Decoded record
// values borrow b for the duration of the call. It fails on the first
// short, corrupt or malformed frame; a replication payload is
// length-delimited and fully trusted only after its CRCs check out.
func DecodeFrames(b []byte, fn func(seq uint64, recs []Record) error) error {
	var recs []Record
	off := int64(0)
	for off < int64(len(b)) {
		seq, body, next, ok := nextBatch(b, off)
		if !ok {
			return fmt.Errorf("wal: corrupt frame at offset %d", off)
		}
		if _, ok := decodeBatch(body, &recs); !ok {
			return fmt.Errorf("wal: malformed batch body at offset %d", off)
		}
		if err := fn(seq, recs); err != nil {
			return err
		}
		off = next
	}
	return nil
}

// AppendFrames appends pre-encoded batch frames verbatim: each frame is
// CRC-validated and must carry the log's next sequence number, keeping a
// follower's log byte-identical to its leader's. On ErrFrameGap nothing of
// the offending frame (or its successors) is written and the log stays
// healthy — the caller answers with NextSeq so the sender re-syncs. I/O
// failures are sticky exactly as in Append.
func (l *Log) AppendFrames(b []byte) (last uint64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed.Load():
		return 0, ErrClosed
	case !l.started:
		return 0, errors.New("wal: AppendFrames before Start")
	case l.failed.Load():
		return 0, ErrFailed
	}
	off := int64(0)
	for off < int64(len(b)) {
		seq, body, next, ok := nextBatch(b, off)
		if !ok {
			return last, fmt.Errorf("wal: corrupt frame at offset %d", off)
		}
		var recs []Record
		if _, ok := decodeBatch(body, &recs); !ok {
			return last, fmt.Errorf("wal: malformed batch body at offset %d", off)
		}
		if seq != l.nextSeq {
			return last, fmt.Errorf("%w: frame seq %d, log expects %d", ErrFrameGap, seq, l.nextSeq)
		}
		if l.segSize >= l.opts.SegmentBytes {
			if err := l.rotateLocked(); err != nil {
				l.failed.Store(true)
				return last, fmt.Errorf("wal: rotate: %w", err)
			}
		}
		frame := b[off:next]
		if err := l.writeFrame(frame); err != nil {
			l.failed.Store(true)
			return last, err
		}
		l.segSize += int64(len(frame))
		l.nextSeq++
		l.appended.Store(seq)
		if l.opts.Tee != nil {
			l.opts.Tee(seq, frame)
		}
		last = seq
		off = next
	}
	return last, nil
}

// Reset wipes the log and restarts it at nextSeq: the active segment is
// closed, every segment file is removed, and a fresh segment beginning at
// nextSeq is opened. Used by a handoff install, which replaces the target
// shard's entire history with the shipped snapshot. Only valid on a
// started, healthy log; the caller must serialize against appends.
func (l *Log) Reset(nextSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed.Load():
		return ErrClosed
	case !l.started:
		return errors.New("wal: Reset before Start")
	case l.failed.Load():
		return ErrFailed
	}
	if nextSeq == 0 {
		nextSeq = 1
	}
	// Hold the sync mutex across the file swap: a concurrent Sync (group
	// commit runs fsyncs outside the caller's append serialization) must
	// either finish against the old segment first or observe the swapped
	// state, never fsync a closing file.
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if err := l.f.Close(); err != nil {
		l.failed.Store(true)
		return err
	}
	l.f = nil
	segs, err := l.segments()
	if err != nil {
		l.failed.Store(true)
		return err
	}
	for _, s := range segs {
		if err := os.Remove(filepath.Join(l.dir, s.name)); err != nil {
			l.failed.Store(true)
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(nextSeq)),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		l.failed.Store(true)
		return err
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		l.failed.Store(true)
		return err
	}
	l.f, l.segSize, l.nextSeq = f, 0, nextSeq
	l.appended.Store(nextSeq - 1)
	l.synced = nextSeq - 1
	return nil
}
