// Snapshot files: a full key/value image of one shard at a known WAL
// sequence, written atomically (temp file + fsync + rename + dir fsync) so
// a crash mid-snapshot leaves the previous snapshot intact. Recovery loads
// the newest snapshot that validates and replays only the WAL tail past its
// sequence; retention is "newest snapshot + tail" — older snapshots and
// fully-covered segments are pruned after each successful snapshot.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Entry is one key/value pair of a snapshot.
type Entry struct {
	Key   uint64
	Value []byte
}

const (
	snapMagic  = 0x564f544d534e4150 // "VOTMSNAP"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	snapHdrLen = 24 // magic + seq + count
)

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSnapshot writes entries as the snapshot at seq (the last WAL
// sequence the image includes; 0 = an empty log). The file layout is
//
//	u64 magic | u64 seq | u64 count | count × (u64 key | u32 vlen | bytes) | u32 crc32c
//
// with the CRC covering everything before it. The write is atomic: a crash
// leaves either the complete new snapshot or none at all.
func WriteSnapshot(dir string, seq uint64, entries []Entry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := snapHdrLen + 4
	for _, e := range entries {
		n += 12 + len(e.Value)
	}
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint64(b, snapMagic)
	b = binary.LittleEndian.AppendUint64(b, seq)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(entries)))
	for _, e := range entries {
		b = binary.LittleEndian.AppendUint64(b, e.Key)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(e.Value)))
		b = append(b, e.Value...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))

	tmp := filepath.Join(dir, snapName(seq)+".tmp")
	if err := writeFileSync(tmp, b); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(seq))); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// LoadNewestSnapshot returns the newest snapshot in dir that validates
// (magic, count, CRC). Invalid or partial snapshot files are skipped, not
// deleted — recovery must never destroy evidence. ok is false when no
// valid snapshot exists.
func LoadNewestSnapshot(dir string) (seq uint64, entries []Entry, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0, nil, false, nil
	}
	if err != nil {
		return 0, nil, false, err
	}
	var seqs []uint64
	for _, e := range ents {
		if s, isSnap := parseSnapName(e.Name()); isSnap {
			seqs = append(seqs, s)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, s := range seqs {
		entries, ok = readSnapshot(filepath.Join(dir, snapName(s)))
		if ok {
			return s, entries, true, nil
		}
	}
	return 0, nil, false, nil
}

// readSnapshot parses and validates one snapshot file.
func readSnapshot(path string) ([]Entry, bool) {
	b, err := os.ReadFile(path)
	if err != nil || len(b) < snapHdrLen+4 {
		return nil, false
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, false
	}
	if binary.LittleEndian.Uint64(body) != snapMagic {
		return nil, false
	}
	count := binary.LittleEndian.Uint64(body[16:])
	p := body[snapHdrLen:]
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(p) < 12 {
			return nil, false
		}
		key := binary.LittleEndian.Uint64(p)
		vlen := int(binary.LittleEndian.Uint32(p[8:]))
		p = p[12:]
		if vlen > len(p) {
			return nil, false
		}
		entries = append(entries, Entry{Key: key, Value: p[:vlen:vlen]})
		p = p[vlen:]
	}
	if len(p) != 0 {
		return nil, false
	}
	return entries, true
}

// PruneSnapshots removes every snapshot older than keepSeq (retention:
// newest snapshot only).
func PruneSnapshots(dir string, keepSeq uint64) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, e := range ents {
		if s, isSnap := parseSnapName(e.Name()); isSnap && s < keepSeq {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return syncDir(dir)
	}
	return nil
}
