package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildSegment writes nBatches single-record batches starting at seq 1 and
// returns the raw segment bytes.
func buildSegment(tb testing.TB, nBatches int) []byte {
	tb.Helper()
	dir := tb.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		tb.Fatalf("Open: %v", err)
	}
	if err := l.Start(1); err != nil {
		tb.Fatalf("Start: %v", err)
	}
	for i := 1; i <= nBatches; i++ {
		recs := []Record{
			{Kind: RecPut, Key: uint64(i), Value: bytes.Repeat([]byte{byte(i)}, i%7)},
			{Kind: RecDelete, Key: uint64(i + 1000)},
		}
		if _, _, err := l.Append(recs); err != nil {
			tb.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		tb.Fatalf("Close: %v", err)
	}
	b, err := os.ReadFile(filepath.Join(dir, segName(1)))
	if err != nil {
		tb.Fatalf("read segment: %v", err)
	}
	return b
}

// FuzzReplay feeds arbitrary bytes to the replayer as the contents of the
// first segment and asserts the crash-recovery contract: replay never
// panics, never errors on corrupt input, applies batches strictly in
// sequence order starting at 1, and every applied batch is an intact prefix
// of the file — replay must stop cleanly at the first corrupt record and
// never surface a partial group.
func FuzzReplay(f *testing.F) {
	seg := buildSegment(f, 8)
	f.Add(seg)                 // intact log
	f.Add(seg[:len(seg)-5])    // torn tail: short final frame
	f.Add(seg[:len(seg)/2])    // torn mid-file
	f.Add(seg[:batchHdrLen-2]) // shorter than one header
	f.Add([]byte{})            // empty segment
	flip := append([]byte(nil), seg...)
	flip[len(flip)/3] ^= 0x10 // bit flip in a middle batch
	f.Add(flip)
	hdr := append([]byte(nil), seg...)
	hdr[0] ^= 0xff // absurd length prefix
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatalf("write segment: %v", err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		next := uint64(1)
		applied := int64(0)
		st, err := l.Replay(1, func(seq uint64, recs []Record) error {
			if seq != next {
				t.Fatalf("batch %d applied out of order (want %d)", seq, next)
			}
			next = seq + 1
			for _, r := range recs {
				if r.Kind != RecPut && r.Kind != RecDelete {
					t.Fatalf("invalid record kind %d surfaced", r.Kind)
				}
			}
			applied++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay errored on corrupt input: %v", err)
		}
		if int64(st.Batches) != applied {
			t.Fatalf("stats report %d batches, applied %d", st.Batches, applied)
		}
		// The truncation must be physical and idempotent: a second replay of
		// the repaired log sees the same batches and zero truncated bytes.
		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		st2, err := l2.Replay(1, nil)
		if err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if st2.TruncatedBytes != 0 {
			t.Fatalf("second replay still truncating (%d bytes)", st2.TruncatedBytes)
		}
		if st2.Batches != st.Batches {
			t.Fatalf("second replay applied %d batches, first %d", st2.Batches, st.Batches)
		}
		// And the repaired log is appendable: the intact prefix extends.
		if err := l2.Start(st2.LastSeq + 1); err != nil {
			t.Fatalf("Start after repair: %v", err)
		}
		if _, _, err := l2.Append([]Record{{Kind: RecPut, Key: 9, Value: []byte("k")}}); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		st3, err := mustOpen(t, dir).Replay(1, nil)
		if err != nil {
			t.Fatalf("third Replay: %v", err)
		}
		if st3.Batches != st.Batches+1 {
			t.Fatalf("post-repair append lost: %d batches, want %d", st3.Batches, st.Batches+1)
		}
	})
}

func mustOpen(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}
