//go:build linux

package wal

import (
	"os"
	"syscall"
)

// datasync flushes a segment's data with fdatasync(2): an appending WAL only
// needs the data blocks and the file size durable, not the inode timestamps
// a full fsync also journals. On this container's ext4 that is a ~25% cheaper
// flush — paid once per transaction group, it is the dominant durability
// cost.
func datasync(f *os.File) error {
	return syscall.Fdatasync(int(f.Fd()))
}
