package wal

import (
	"fmt"
	"testing"
)

// BenchmarkAppendSync isolates the durability floor: one redo batch encoded,
// written, and flushed (fdatasync) per iteration. The flush dominates — on
// the reference container an 11 KiB batch costs ~200 microseconds — which is
// why the server amortizes it over a whole transaction group and lags flushes
// across groups under a standing queue (internal/server group commit).
func BenchmarkAppendSync(b *testing.B) {
	for _, n := range []int{16, 512} {
		b.Run(fmt.Sprintf("recs%d", n), func(b *testing.B) {
			l, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			if err := l.Start(1); err != nil {
				b.Fatal(err)
			}
			val := make([]byte, 16)
			recs := make([]Record, n)
			for i := range recs {
				recs[i] = Record{Kind: RecPut, Key: uint64(i), Value: val}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq, _, err := l.Append(recs)
				if err != nil {
					b.Fatal(err)
				}
				if err := l.Sync(seq); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1000, "us/group")
		})
	}
}
