// Package wal implements votmd's per-shard write-ahead log: an append-only
// sequence of CRC-checked record batches, one batch per executed transaction
// group, with segment rotation, snapshot files, and a replayer that
// reconstructs a shard's state after a crash.
//
// # Durability model
//
// The log is logical redo: each batch carries the post-images (PUT key/value
// and DELETE key records) of one committed group transaction, stamped with a
// shard-local sequence number. Append order equals commit order — the server
// serializes write-group execution and append under one per-shard mutex — so
// replaying batches in sequence order reproduces the exact committed state.
//
// Appending and flushing are split so fsyncs can be shared: Append writes
// the batch (one buffered encode, one write), Sync makes a sequence number
// durable. Concurrent groups whose appends land while another group's fsync
// is in flight are covered by the next fsync — classic group-commit
// piggybacking, at most one fsync per transaction group and usually fewer.
//
// A batch frame is
//
//	u32 bodyLen | u32 crc32c(body) | body
//	body = u64 seq | u32 count | count × record
//	record = u8 kind | u64 key | (RecPut: u32 vlen | vlen bytes)
//
// little-endian throughout. Torn tails — a crash mid-write — are detected by
// the length/CRC pair: replay stops at the first short or corrupt frame,
// reports the truncated byte count, and physically truncates the tail so the
// next incarnation appends after the last intact batch.
//
// All I/O funnels through an optional fault hook (faultinject.DiskHook) so
// chaos tests can inject short writes and fsync failures; with a nil hook
// the instrumented branches are never taken.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"votm/internal/faultinject"
)

// RecordKind identifies one logical redo record.
type RecordKind uint8

const (
	// RecPut sets a key to a value (post-image).
	RecPut RecordKind = 1
	// RecDelete removes a key.
	RecDelete RecordKind = 2

	// RecPrepare is phase one of a cross-shard ATOMIC group: Key carries the
	// group's transaction ID (xid), Value the nested encoding
	// (AppendPrepareValue) of this shard's share of the group's redo records.
	// A prepare is a promise, not a decision: replay stashes it and applies
	// the records only at the matching RecCommit.
	RecPrepare RecordKind = 3
	// RecCommit is the decision record for xid = Key: replay applies the
	// stashed prepare at this point in the log. The coordinator appends every
	// participant's commit only after ALL prepares are durable, so a commit
	// record anywhere implies every participant can replay its share.
	RecCommit RecordKind = 4
	// RecAbort drops the stashed prepare for xid = Key. Written by the
	// mid-protocol failure path and by recovery when it resolves a dangling
	// prepare, making each log self-contained afterwards.
	RecAbort RecordKind = 5
)

// Record is one logical redo record of a batch. Value is meaningful for
// RecPut and RecPrepare only and borrows the caller's buffer until Append
// returns (the replayer hands out sub-slices of its read buffer, valid for
// one apply call).
type Record struct {
	Kind  RecordKind
	Key   uint64
	Value []byte
}

// castagnoli is the CRC32C table shared by batches, snapshots and markers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	batchHdrLen  = 8       // u32 len + u32 crc
	maxBatchBody = 1 << 26 // 64 MiB sanity bound on one batch body

	segPrefix = "wal-"
	segSuffix = ".seg"
	cleanFile = "CLEAN"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrFailed is the sticky error returned after an append or sync I/O
// failure: the log refuses further writes so the caller can fail over to a
// read-only regime instead of silently losing durability.
var ErrFailed = errors.New("wal: log failed; shard must go read-only")

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold: a segment that reaches this
	// size is fsynced, closed, and succeeded by a fresh one. Default 64 MiB.
	SegmentBytes int64
	// Fault, when non-nil, is invoked at every append and fsync site; a
	// non-nil return injects an I/O failure there. Test-only.
	Fault faultinject.DiskHook

	// Tee, when non-nil, observes every appended batch frame (the exact
	// encoded bytes, length/CRC header included) after its write succeeds.
	// It is called with the append mutex held and the frame buffer is
	// reused by the next append — implementations must copy what they keep
	// and return quickly. The replication sender uses this to fan batches
	// out to followers without re-reading the segment files.
	Tee func(seq uint64, frame []byte)
}

// Log is one shard's write-ahead log. Append callers must be externally
// serialized in commit order (the server's per-shard WAL mutex); Sync may
// be called concurrently from any goroutine.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards the append side: file, sizes, rotation
	f        *os.File
	segSize  int64
	nextSeq  uint64
	buf      []byte // retained batch-encode scratch
	started  bool
	appended atomic.Uint64 // last appended seq, read by Sync

	syncMu sync.Mutex
	synced uint64 // last seq known durable; guarded by syncMu

	fsyncs atomic.Uint64 // segment fsyncs issued (piggybacking keeps this ≤ appends)
	failed atomic.Bool
	closed atomic.Bool
}

// Open prepares dir (creating it if needed) and returns an idle Log.
// Call Replay to recover existing content, then Start to begin appending.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Log{dir: dir, opts: opts}, nil
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// segName returns the segment file name for a starting sequence number.
func segName(startSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, startSeq, segSuffix)
}

// parseSegName extracts the starting sequence from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	if len(hexPart) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// segments lists the log's segment files sorted by starting sequence.
func (l *Log) segments() ([]segInfo, error) {
	return listSegments(l.dir)
}

type segInfo struct {
	name  string
	start uint64
}

func listSegments(dir string) ([]segInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segInfo
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if start, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segInfo{name: e.Name(), start: start})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	return segs, nil
}

// syncDir flushes directory metadata (segment creation, renames, removals).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Start opens a fresh segment beginning at nextSeq and enables Append.
// Call it after Replay has recovered (and truncated) existing content.
func (l *Log) Start(nextSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Load() {
		return ErrClosed
	}
	if l.started {
		return errors.New("wal: Start called twice")
	}
	if nextSeq == 0 {
		nextSeq = 1
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(nextSeq)),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		return err
	}
	l.f, l.segSize, l.nextSeq, l.started = f, 0, nextSeq, true
	l.appended.Store(nextSeq - 1)
	l.syncMu.Lock()
	l.synced = nextSeq - 1
	l.syncMu.Unlock()
	return nil
}

// appendBatch encodes recs with the given seq into dst.
func appendBatch(dst []byte, seq uint64, recs []Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // len + crc, patched below
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = append(dst, byte(r.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
		if r.Kind == RecPut || r.Kind == RecPrepare {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
			dst = append(dst, r.Value...)
		}
	}
	body := dst[start+batchHdrLen:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(body, castagnoli))
	return dst
}

// Append writes recs as the next batch — one encode, one write, no fsync
// (call Sync for durability). It returns the batch's sequence number and
// the bytes written. After an I/O failure the log is failed: the torn or
// missing tail stays exactly as the fault left it and every later Append
// and Sync returns ErrFailed.
func (l *Log) Append(recs []Record) (seq uint64, n int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.closed.Load():
		return 0, 0, ErrClosed
	case !l.started:
		return 0, 0, errors.New("wal: Append before Start")
	case l.failed.Load():
		return 0, 0, ErrFailed
	}

	// Rotate before the batch so a batch never spans segments.
	if l.segSize >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.failed.Store(true)
			return 0, 0, fmt.Errorf("wal: rotate: %w", err)
		}
	}

	seq = l.nextSeq
	l.buf = appendBatch(l.buf[:0], seq, recs)
	if len(l.buf) > batchHdrLen+maxBatchBody {
		return 0, 0, fmt.Errorf("wal: batch of %d bytes exceeds the body bound", len(l.buf))
	}
	if err := l.writeFrame(l.buf); err != nil {
		l.failed.Store(true)
		return 0, 0, err
	}
	l.segSize += int64(len(l.buf))
	l.nextSeq++
	l.appended.Store(seq)
	if l.opts.Tee != nil {
		l.opts.Tee(seq, l.buf)
	}
	return seq, len(l.buf), nil
}

// writeFrame writes one encoded batch, threading the fault hook's
// before/mid sites. With no hook it is a single Write call.
func (l *Log) writeFrame(frame []byte) error {
	hook := l.opts.Fault
	if hook == nil {
		_, err := l.f.Write(frame)
		return err
	}
	if err := hook(faultinject.DiskAppend); err != nil {
		return err
	}
	half := len(frame) / 2
	if _, err := l.f.Write(frame[:half]); err != nil {
		return err
	}
	if err := hook(faultinject.DiskAppendMid); err != nil {
		return err // torn: a prefix of the batch is on disk
	}
	_, err := l.f.Write(frame[half:])
	return err
}

// rotateLocked seals the active segment (fsync + close) and opens the next
// one. Called with l.mu held.
func (l *Log) rotateLocked() error {
	if err := l.syncFile(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.nextSeq)),
		os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := syncDir(l.dir); err != nil {
		_ = f.Close()
		return err
	}
	// Everything appended so far is durable (the seal fsynced it).
	l.syncMu.Lock()
	l.synced = l.nextSeq - 1
	l.syncMu.Unlock()
	l.f, l.segSize = f, 0
	return nil
}

// syncFile flushes the active segment through the fault hook (fdatasync on
// Linux — see datasync).
func (l *Log) syncFile() error {
	if hook := l.opts.Fault; hook != nil {
		if err := hook(faultinject.DiskSync); err != nil {
			return err
		}
	}
	l.fsyncs.Add(1)
	return datasync(l.f)
}

// Fsyncs returns the number of segment fsyncs issued so far.
func (l *Log) Fsyncs() uint64 { return l.fsyncs.Load() }

// Sync blocks until batch seq is durable. Concurrent callers share fsyncs:
// whoever wins the sync mutex flushes everything appended so far, and the
// queued callers find their sequence already covered — the group-commit
// piggyback that keeps fsyncs at or below one per transaction group.
func (l *Log) Sync(seq uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= seq {
		return nil
	}
	if l.failed.Load() {
		return ErrFailed
	}
	if l.closed.Load() {
		return ErrClosed
	}
	target := l.appended.Load()
	if err := l.syncFile(); err != nil {
		l.failed.Store(true)
		return err
	}
	l.synced = target
	return nil
}

// Failed reports whether the log hit an I/O failure and refuses writes.
func (l *Log) Failed() bool { return l.failed.Load() }

// Prune removes segments whose every batch is at or below seq (covered by
// a snapshot). The active segment is never removed.
func (l *Log) Prune(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return err
	}
	removed := false
	for i := 0; i+1 < len(segs); i++ {
		// Segment i holds batches [start_i, start_{i+1}); removable when the
		// whole range is covered.
		if segs[i+1].start <= seq+1 {
			if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return syncDir(l.dir)
	}
	return nil
}

// Close seals the log: fsync (best effort on a failed log) and close the
// active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Swap(true) {
		return nil
	}
	if l.f == nil {
		return nil
	}
	var err error
	if !l.failed.Load() {
		err = l.syncFile()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// --- clean-shutdown marker ---------------------------------------------

// MarkClean records a clean shutdown at seq: every segment is removed (the
// caller has snapshotted through seq) and a CRC-stamped marker file is
// written, letting the next startup skip tail replay entirely. Call after
// Close on a healthy log.
func MarkClean(dir string, seq uint64) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := os.Remove(filepath.Join(dir, s.name)); err != nil {
			return err
		}
	}
	var b [12]byte
	binary.LittleEndian.PutUint64(b[:8], seq)
	binary.LittleEndian.PutUint32(b[8:], crc32.Checksum(b[:8], castagnoli))
	tmp := filepath.Join(dir, cleanFile+".tmp")
	if err := writeFileSync(tmp, b[:]); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, cleanFile)); err != nil {
		return err
	}
	return syncDir(dir)
}

// ReadCleanMarker returns the clean-shutdown sequence if a valid marker
// exists.
func ReadCleanMarker(dir string) (seq uint64, ok bool) {
	b, err := os.ReadFile(filepath.Join(dir, cleanFile))
	if err != nil || len(b) != 12 {
		return 0, false
	}
	if crc32.Checksum(b[:8], castagnoli) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[:8]), true
}

// RemoveCleanMarker deletes the marker (the log is about to become dirty).
// Missing markers are fine.
func RemoveCleanMarker(dir string) error {
	err := os.Remove(filepath.Join(dir, cleanFile))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(dir)
}

// --- prepare-record payload ----------------------------------------------

// AppendPrepareValue encodes recs — one shard's share of a cross-shard
// group's redo records — as a RecPrepare value: u32 count followed by the
// batch record encoding. Only RecPut and RecDelete may nest (a prepare never
// contains another prepare or a decision record).
func AppendPrepareValue(dst []byte, recs []Record) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = append(dst, byte(r.Kind))
		dst = binary.LittleEndian.AppendUint64(dst, r.Key)
		if r.Kind == RecPut {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
			dst = append(dst, r.Value...)
		}
	}
	return dst
}

// DecodePrepareValue parses a RecPrepare value into *recs (reusing its
// capacity). It returns false on a malformed payload or a nested kind that
// is not RecPut/RecDelete. Decoded values borrow the input buffer.
func DecodePrepareValue(value []byte, recs *[]Record) bool {
	*recs = (*recs)[:0]
	if len(value) < 4 {
		return false
	}
	count := int(binary.LittleEndian.Uint32(value))
	p := value[4:]
	for i := 0; i < count; i++ {
		if len(p) < 9 {
			return false
		}
		r := Record{Kind: RecordKind(p[0]), Key: binary.LittleEndian.Uint64(p[1:])}
		p = p[9:]
		switch r.Kind {
		case RecPut:
			if len(p) < 4 {
				return false
			}
			vlen := int(binary.LittleEndian.Uint32(p))
			p = p[4:]
			if vlen > len(p) {
				return false
			}
			r.Value = p[:vlen:vlen]
			p = p[vlen:]
		case RecDelete:
		default:
			return false
		}
		*recs = append(*recs, r)
	}
	if len(p) != 0 {
		return false
	}
	return true
}

// writeFileSync writes path atomically enough for a marker: create, write,
// fsync, close.
func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
