// WAL replay: scan the segment chain in sequence order, apply every intact
// batch, stop cleanly at the first torn or corrupt record, and physically
// truncate the bad tail so the next incarnation of the log appends after
// the last batch that actually survived.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ReplayStats summarizes one recovery pass.
type ReplayStats struct {
	Segments       int    // segment files scanned
	Batches        uint64 // intact batches applied
	Records        uint64 // records inside applied batches
	SkippedBatches uint64 // intact batches below fromSeq (covered by the snapshot)
	TruncatedBytes int64  // torn/corrupt tail bytes removed
	LastSeq        uint64 // sequence of the last applied (or skipped) batch; 0 if none
}

// Replay scans the log's segments in order, calling apply for every intact
// batch whose sequence is >= fromSeq. Batches below fromSeq (already
// captured by a snapshot) are validated and skipped. The scan stops at the
// first short frame, CRC mismatch, malformed body, or sequence
// discontinuity; the offending tail is truncated — and any later segments
// deleted — so subsequent appends extend the intact prefix. A non-nil
// error from apply aborts the replay and is returned as-is.
//
// Replay must run before Start.
func (l *Log) Replay(fromSeq uint64, apply func(seq uint64, recs []Record) error) (ReplayStats, error) {
	var st ReplayStats
	l.mu.Lock()
	started := l.started
	l.mu.Unlock()
	if started {
		return st, fmt.Errorf("wal: Replay after Start")
	}

	segs, err := l.segments()
	if err != nil {
		return st, err
	}
	var (
		expect  uint64 // next expected seq; 0 = not yet pinned
		recs    []Record
		corrupt bool
	)
	for i, seg := range segs {
		path := filepath.Join(l.dir, seg.name)
		if corrupt {
			// Everything after a truncation point is unreachable history
			// (it can only exist if a previous recovery was interrupted):
			// drop it so the intact prefix is the whole log.
			st.TruncatedBytes += fileSize(path)
			if err := os.Remove(path); err != nil {
				return st, err
			}
			continue
		}
		if expect != 0 && seg.start != expect {
			// A gap between segments: the chain is broken here.
			corrupt = true
			st.TruncatedBytes += fileSize(path)
			if err := os.Remove(path); err != nil {
				return st, err
			}
			continue
		}
		st.Segments++
		good, size, err := l.replaySegment(path, seg.start, fromSeq, &expect, &recs, &st, apply)
		if err != nil {
			return st, err
		}
		if good < size {
			corrupt = true
			st.TruncatedBytes += size - good
			if good == 0 && i > 0 {
				// Nothing intact in this segment: remove it entirely rather
				// than leaving an empty file shadowing the name space.
				if err := os.Remove(path); err != nil {
					return st, err
				}
			} else if err := os.Truncate(path, good); err != nil {
				return st, err
			}
		}
	}
	if corrupt {
		if err := syncDir(l.dir); err != nil {
			return st, err
		}
	}
	return st, nil
}

// replaySegment walks one segment file, applying batches and returning the
// byte offset of the end of the last intact batch plus the file size.
func (l *Log) replaySegment(path string, start, fromSeq uint64, expect *uint64,
	recs *[]Record, st *ReplayStats, apply func(uint64, []Record) error) (good, size int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	size = int64(len(b))
	if *expect == 0 {
		*expect = start
	}
	off := int64(0)
	for {
		seq, body, next, ok := nextBatch(b, off)
		if !ok {
			return off, size, nil // short or corrupt frame: stop here
		}
		if seq != *expect {
			return off, size, nil // discontinuity: treat as corruption
		}
		n, ok := decodeBatch(body, recs)
		if !ok {
			return off, size, nil // CRC passed but body malformed: stop
		}
		st.LastSeq = seq
		if seq >= fromSeq {
			st.Batches++
			st.Records += uint64(n)
			if apply != nil {
				if err := apply(seq, *recs); err != nil {
					return off, size, err
				}
			}
		} else {
			st.SkippedBatches++
		}
		*expect = seq + 1
		off = next
	}
}

// nextBatch frames the batch at off: it validates the length prefix and CRC
// and returns the body plus the offset one past the batch.
func nextBatch(b []byte, off int64) (seq uint64, body []byte, next int64, ok bool) {
	if off+batchHdrLen > int64(len(b)) {
		return 0, nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(b[off:]))
	crc := binary.LittleEndian.Uint32(b[off+4:])
	if n < 12 || n > maxBatchBody || off+batchHdrLen+n > int64(len(b)) {
		return 0, nil, 0, false
	}
	body = b[off+batchHdrLen : off+batchHdrLen+n]
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, nil, 0, false
	}
	return binary.LittleEndian.Uint64(body), body, off + batchHdrLen + n, true
}

// decodeBatch parses a validated body into *recs (reusing its capacity).
func decodeBatch(body []byte, recs *[]Record) (n int, ok bool) {
	*recs = (*recs)[:0]
	count := int(binary.LittleEndian.Uint32(body[8:]))
	p := body[12:]
	for i := 0; i < count; i++ {
		if len(p) < 9 {
			return 0, false
		}
		r := Record{Kind: RecordKind(p[0]), Key: binary.LittleEndian.Uint64(p[1:])}
		p = p[9:]
		switch r.Kind {
		case RecPut, RecPrepare:
			if len(p) < 4 {
				return 0, false
			}
			vlen := int(binary.LittleEndian.Uint32(p))
			p = p[4:]
			if vlen > len(p) {
				return 0, false
			}
			r.Value = p[:vlen:vlen]
			p = p[vlen:]
		case RecDelete, RecCommit, RecAbort:
		default:
			return 0, false
		}
		*recs = append(*recs, r)
	}
	if len(p) != 0 {
		return 0, false
	}
	return count, true
}

// fileSize returns a file's size, 0 on error (the file is being removed).
func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
