package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestTeeAndAppendFrames: frames observed by the leader's tee, appended
// verbatim on a follower, produce a byte-identical log that replays to the
// same records.
func TestTeeAndAppendFrames(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	var teed []byte
	var teedSeqs []uint64
	leader, err := Open(leaderDir, Options{Tee: func(seq uint64, frame []byte) {
		teed = append(teed, frame...) // must copy: the buffer is reused
		teedSeqs = append(teedSeqs, seq)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Start(1); err != nil {
		t.Fatal(err)
	}
	batches := [][]Record{
		{{Kind: RecPut, Key: 1, Value: []byte("a")}},
		{{Kind: RecPut, Key: 2, Value: []byte("bb")}, {Kind: RecDelete, Key: 1}},
		{{Kind: RecPut, Key: 3, Value: []byte("ccc")}},
	}
	for _, recs := range batches {
		if _, _, err := leader.Append(recs); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(teedSeqs, []uint64{1, 2, 3}) {
		t.Fatalf("teed seqs = %v", teedSeqs)
	}

	follower, err := Open(followerDir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.Start(1); err != nil {
		t.Fatal(err)
	}
	last, err := follower.AppendFrames(teed)
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 || follower.NextSeq() != 4 {
		t.Fatalf("last=%d nextSeq=%d", last, follower.NextSeq())
	}
	if err := follower.Sync(last); err != nil {
		t.Fatal(err)
	}
	// Byte-identical segments.
	lb, err := os.ReadFile(filepath.Join(leaderDir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(filepath.Join(followerDir, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lb, fb) {
		t.Fatal("follower segment differs from leader segment")
	}

	// Re-appending the same frames is a gap (seq 1 != nextSeq 4), and the
	// log stays healthy and appendable afterwards.
	if _, err := follower.AppendFrames(teed); !errors.Is(err, ErrFrameGap) {
		t.Fatalf("replayed frames: got %v, want ErrFrameGap", err)
	}
	if _, _, err := follower.Append([]Record{{Kind: RecPut, Key: 9, Value: []byte("z")}}); err != nil {
		t.Fatalf("append after gap: %v", err)
	}
}

// TestDecodeFrames: every teed batch decodes to its records; corrupt bytes
// fail typed.
func TestDecodeFrames(t *testing.T) {
	dir := t.TempDir()
	var teed []byte
	l, err := Open(dir, Options{Tee: func(_ uint64, frame []byte) {
		teed = append(teed, frame...)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]Record{{Kind: RecPut, Key: 7, Value: []byte("x")}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]Record{{Kind: RecDelete, Key: 7}}); err != nil {
		t.Fatal(err)
	}
	var got []Record
	var seqs []uint64
	err = DecodeFrames(teed, func(seq uint64, recs []Record) error {
		seqs = append(seqs, seq)
		for _, r := range recs {
			r.Value = append([]byte(nil), r.Value...)
			got = append(got, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []uint64{5, 6}) {
		t.Fatalf("seqs = %v", seqs)
	}
	want := []Record{{Kind: RecPut, Key: 7, Value: []byte("x")}, {Kind: RecDelete, Key: 7}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records = %+v, want %+v", got, want)
	}
	// Flip a body byte: the CRC must catch it.
	bad := append([]byte(nil), teed...)
	bad[len(bad)-1] ^= 0xFF
	if err := DecodeFrames(bad, func(uint64, []Record) error { return nil }); err == nil {
		t.Fatal("corrupt frame decoded")
	}
}

// TestReset: a reset log restarts at the requested sequence with no
// segments from its previous life, and replays only post-reset content.
func TestReset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Start(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(i), Value: []byte("old")}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(41); err != nil {
		t.Fatal(err)
	}
	if l.NextSeq() != 41 {
		t.Fatalf("NextSeq after reset = %d, want 41", l.NextSeq())
	}
	seq, _, err := l.Append([]Record{{Kind: RecPut, Key: 100, Value: []byte("new")}})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 41 {
		t.Fatalf("first post-reset seq = %d, want 41", seq)
	}
	if err := l.Sync(seq); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	st, err := reopened.Replay(0, func(_ uint64, recs []Record) error {
		for _, r := range recs {
			keys = append(keys, r.Key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.LastSeq != 41 || !reflect.DeepEqual(keys, []uint64{100}) {
		t.Fatalf("replay after reset: %+v keys=%v", st, keys)
	}
}
