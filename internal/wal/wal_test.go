package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"votm/internal/faultinject"
)

// openStarted returns a Log opened on dir and started at seq 1.
func openStarted(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Start(1); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return l
}

// collectReplay replays the log from fromSeq into a map, asserting batches
// arrive in sequence order.
func collectReplay(t *testing.T, dir string, fromSeq uint64, opts Options) (map[uint64][]byte, ReplayStats) {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open for replay: %v", err)
	}
	state := make(map[uint64][]byte)
	last := uint64(0)
	st, err := l.Replay(fromSeq, func(seq uint64, recs []Record) error {
		if last != 0 && seq != last+1 {
			t.Fatalf("replay out of order: %d after %d", seq, last)
		}
		last = seq
		for _, r := range recs {
			switch r.Kind {
			case RecPut:
				state[r.Key] = append([]byte(nil), r.Value...)
			case RecDelete:
				delete(state, r.Key)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return state, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openStarted(t, dir, Options{})
	want := make(map[uint64][]byte)
	for i := 0; i < 100; i++ {
		var recs []Record
		for j := 0; j < 1+i%5; j++ {
			k := uint64(i*10 + j)
			if j == 2 {
				recs = append(recs, Record{Kind: RecDelete, Key: k - 1})
				delete(want, k-1)
				continue
			}
			v := []byte(fmt.Sprintf("value-%d-%d", i, j))
			recs = append(recs, Record{Kind: RecPut, Key: k, Value: v})
			want[k] = v
		}
		seq, n, err := l.Append(recs)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("Append seq = %d, want %d", seq, i+1)
		}
		if n <= batchHdrLen {
			t.Fatalf("Append wrote %d bytes", n)
		}
	}
	if err := l.Sync(100); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, st := collectReplay(t, dir, 1, Options{})
	if st.Batches != 100 || st.Records == 0 || st.TruncatedBytes != 0 || st.LastSeq != 100 {
		t.Fatalf("ReplayStats = %+v", st)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("key %d: got %q want %q", k, got[k], v)
		}
	}
}

func TestSyncIdempotentAndPiggyback(t *testing.T) {
	dir := t.TempDir()
	l := openStarted(t, dir, Options{})
	for i := 0; i < 8; i++ {
		if _, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(i), Value: []byte("x")}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// One Sync at the tail covers every lower sequence; later Syncs of
	// covered sequences are free.
	if err := l.Sync(8); err != nil {
		t.Fatalf("Sync(8): %v", err)
	}
	for s := uint64(1); s <= 8; s++ {
		if err := l.Sync(s); err != nil {
			t.Fatalf("Sync(%d) after tail sync: %v", s, err)
		}
	}
	// Concurrent appends + syncs must be race-free (run under -race).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_ = l.Sync(l.appended.Load())
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(100 + i), Value: []byte("y")}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation every couple of batches.
	l := openStarted(t, dir, Options{SegmentBytes: 64})
	val := bytes.Repeat([]byte("v"), 40)
	for i := 1; i <= 20; i++ {
		if _, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(i), Value: val}}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	segs, err := l.segments()
	if err != nil {
		t.Fatalf("segments: %v", err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected many small segments, got %d", len(segs))
	}
	// Prune everything covered through seq 10: segments whose whole range is
	// ≤ 10 go away, the rest (and the active segment) stay replayable.
	if err := l.Prune(10); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	after, _ := l.segments()
	if len(after) >= len(segs) {
		t.Fatalf("Prune removed nothing: %d -> %d segments", len(segs), len(after))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state, st := collectReplay(t, dir, 11, Options{})
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", st.TruncatedBytes)
	}
	if st.LastSeq != 20 {
		t.Fatalf("LastSeq = %d, want 20", st.LastSeq)
	}
	for i := uint64(11); i <= 20; i++ {
		if !bytes.Equal(state[i], val) {
			t.Fatalf("key %d missing after prune+replay", i)
		}
	}
}

func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	l := openStarted(t, dir, Options{})
	for i := 1; i <= 10; i++ {
		if _, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(i), Value: []byte("v")}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: chop half of the last batch off the single segment.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	path := filepath.Join(dir, segs[0].name)
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-7); err != nil {
		t.Fatalf("tear: %v", err)
	}

	state, st := collectReplay(t, dir, 1, Options{})
	if st.Batches != 9 || st.LastSeq != 9 {
		t.Fatalf("ReplayStats after tear = %+v, want 9 intact batches", st)
	}
	if st.TruncatedBytes == 0 {
		t.Fatalf("tear not reported in TruncatedBytes")
	}
	if _, ok := state[10]; ok {
		t.Fatalf("torn batch 10 was applied")
	}
	// The truncation is physical: a fresh replay sees a clean log, and a
	// restarted log continues from seq 10.
	_, st2 := collectReplay(t, dir, 1, Options{})
	if st2.TruncatedBytes != 0 || st2.Batches != 9 {
		t.Fatalf("second replay not clean: %+v", st2)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := l2.Replay(1, nil); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if err := l2.Start(10); err != nil {
		t.Fatalf("Start(10): %v", err)
	}
	if seq, _, err := l2.Append([]Record{{Kind: RecPut, Key: 10, Value: []byte("retry")}}); err != nil || seq != 10 {
		t.Fatalf("Append after recovery: seq=%d err=%v", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	state3, _ := collectReplay(t, dir, 1, Options{})
	if string(state3[10]) != "retry" {
		t.Fatalf("post-recovery append lost: %q", state3[10])
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	l := openStarted(t, dir, Options{})
	for i := 1; i <= 5; i++ {
		if _, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(i), Value: []byte("abcdef")}}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	b, _ := os.ReadFile(path)
	// Flip one bit inside the third batch's body.
	frame := batchHdrLen + 8 + 4 + 1 + 8 + 4 + 6 // one batch, one 6-byte put
	b[2*frame+batchHdrLen+3] ^= 0x40
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}

	state, st := collectReplay(t, dir, 1, Options{})
	if st.Batches != 2 || st.LastSeq != 2 {
		t.Fatalf("ReplayStats after bit flip = %+v, want 2 intact batches", st)
	}
	if len(state) != 2 {
		t.Fatalf("replayed %d keys, want 2", len(state))
	}
	if st.TruncatedBytes != int64(3*frame) {
		t.Fatalf("TruncatedBytes = %d, want %d (batches 3..5)", st.TruncatedBytes, 3*frame)
	}
}

func TestCleanMarker(t *testing.T) {
	dir := t.TempDir()
	l := openStarted(t, dir, Options{})
	if _, _, err := l.Append([]Record{{Kind: RecPut, Key: 1, Value: []byte("v")}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := MarkClean(dir, 1); err != nil {
		t.Fatalf("MarkClean: %v", err)
	}
	if segs, _ := listSegments(dir); len(segs) != 0 {
		t.Fatalf("MarkClean left %d segments", len(segs))
	}
	seq, ok := ReadCleanMarker(dir)
	if !ok || seq != 1 {
		t.Fatalf("ReadCleanMarker = (%d, %v), want (1, true)", seq, ok)
	}
	// Corrupt marker must be ignored.
	mb, _ := os.ReadFile(filepath.Join(dir, cleanFile))
	mb[0] ^= 0xff
	_ = os.WriteFile(filepath.Join(dir, cleanFile), mb, 0o644)
	if _, ok := ReadCleanMarker(dir); ok {
		t.Fatalf("corrupt marker accepted")
	}
	if err := RemoveCleanMarker(dir); err != nil {
		t.Fatalf("RemoveCleanMarker: %v", err)
	}
	if err := RemoveCleanMarker(dir); err != nil {
		t.Fatalf("RemoveCleanMarker (missing): %v", err)
	}
}

func TestSnapshotRoundTripAndRetention(t *testing.T) {
	dir := t.TempDir()
	entries := []Entry{
		{Key: 1, Value: []byte("one")},
		{Key: 2, Value: []byte{}},
		{Key: 3, Value: bytes.Repeat([]byte("z"), 1000)},
	}
	if err := WriteSnapshot(dir, 7, entries); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := WriteSnapshot(dir, 42, entries[:1]); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	seq, got, ok, err := LoadNewestSnapshot(dir)
	if err != nil || !ok || seq != 42 || len(got) != 1 {
		t.Fatalf("LoadNewestSnapshot = (%d, %d entries, %v, %v)", seq, len(got), ok, err)
	}
	// Corrupt the newest: loader must fall back to the older valid one.
	path := filepath.Join(dir, snapName(42))
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0x01
	_ = os.WriteFile(path, b, 0o644)
	seq, got, ok, err = LoadNewestSnapshot(dir)
	if err != nil || !ok || seq != 7 || len(got) != 3 {
		t.Fatalf("fallback LoadNewestSnapshot = (%d, %d entries, %v, %v)", seq, len(got), ok, err)
	}
	for i, e := range entries {
		if got[i].Key != e.Key || !bytes.Equal(got[i].Value, e.Value) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if err := PruneSnapshots(dir, 7); err != nil {
		t.Fatalf("PruneSnapshots: %v", err)
	}
	if seq, _, ok, _ := LoadNewestSnapshot(dir); !ok || seq != 7 {
		t.Fatalf("retained snapshot gone: (%d, %v)", seq, ok)
	}
	// Missing dir is not an error: a fresh shard simply has no snapshot.
	if _, _, ok, err := LoadNewestSnapshot(filepath.Join(dir, "nope")); ok || err != nil {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
}

func TestDiskFaultsStickTheLog(t *testing.T) {
	cases := []struct {
		name string
		cfg  faultinject.Config
	}{
		{"append-err", faultinject.Config{DiskAppendErrEvery: 3}},
		{"torn", faultinject.Config{DiskTornEvery: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			in := faultinject.New(tc.cfg)
			l := openStarted(t, dir, Options{Fault: in.DiskHook()})
			var failedAt uint64
			for i := 1; i <= 10; i++ {
				_, _, err := l.Append([]Record{{Kind: RecPut, Key: uint64(i), Value: []byte("v")}})
				if err != nil {
					var df *faultinject.InjectedDiskFault
					if !errors.As(err, &df) {
						t.Fatalf("Append %d: unexpected error %v", i, err)
					}
					failedAt = uint64(i)
					break
				}
			}
			if failedAt == 0 {
				t.Fatalf("no injected fault fired")
			}
			if !l.Failed() {
				t.Fatalf("log not marked failed")
			}
			if _, _, err := l.Append(nil); !errors.Is(err, ErrFailed) {
				t.Fatalf("Append after failure = %v, want ErrFailed", err)
			}
			if err := l.Sync(failedAt); !errors.Is(err, ErrFailed) {
				t.Fatalf("Sync after failure = %v, want ErrFailed", err)
			}
			_ = l.Close()
			// Replay recovers exactly the intact prefix — a torn append's
			// half-written batch must be truncated, never applied.
			state, st := collectReplay(t, dir, 1, Options{})
			if st.LastSeq != failedAt-1 {
				t.Fatalf("LastSeq = %d, want %d", st.LastSeq, failedAt-1)
			}
			if _, ok := state[failedAt]; ok {
				t.Fatalf("failed batch %d visible after replay", failedAt)
			}
			_ = st
			if got := in.Stats(); got.DiskFaults != 1 || got.DiskCalls == 0 {
				t.Fatalf("injector stats = %+v", got)
			}
		})
	}
}

func TestSyncFaultSticksTheLog(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New(faultinject.Config{DiskSyncErrEvery: 1})
	l := openStarted(t, dir, Options{Fault: in.DiskHook()})
	if _, _, err := l.Append([]Record{{Kind: RecPut, Key: 1, Value: []byte("v")}}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	err := l.Sync(1)
	var df *faultinject.InjectedDiskFault
	if !errors.As(err, &df) || df.Op != faultinject.DiskSync {
		t.Fatalf("Sync = %v, want injected sync fault", err)
	}
	if !l.Failed() {
		t.Fatalf("log not failed after sync fault")
	}
	if _, _, err := l.Append(nil); !errors.Is(err, ErrFailed) {
		t.Fatalf("Append after sync fault = %v, want ErrFailed", err)
	}
	_ = l.Close()
}
