// Package simpar (simulated parallelism) decides whether workload drivers
// insert cooperative yield points inside transaction bodies.
//
// The paper's testbed is a 16-core machine where 16 threads genuinely
// overlap inside transactions. On a host with fewer cores than benchmark
// threads, a Go transaction body runs to completion without interleaving
// and contention never materializes; yielding between shared accesses makes
// the scheduler interleave transactions the way hardware parallelism does.
// See DESIGN.md §2 (substitutions).
package simpar

import "runtime"

// Mode controls yield-point insertion.
type Mode int

const (
	// Auto yields iff runtime.NumCPU() < threads.
	Auto Mode = iota
	// On always yields.
	On
	// Off never yields.
	Off
)

func (m Mode) String() string {
	switch m {
	case On:
		return "on"
	case Off:
		return "off"
	default:
		return "auto"
	}
}

// Enabled resolves m against the host CPU count.
func Enabled(m Mode, threads int) bool {
	switch m {
	case On:
		return true
	case Off:
		return false
	default:
		return runtime.NumCPU() < threads
	}
}
