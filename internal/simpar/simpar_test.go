package simpar

import (
	"runtime"
	"testing"
)

func TestEnabled(t *testing.T) {
	if Enabled(On, 1) != true {
		t.Error("On must always yield")
	}
	if Enabled(Off, 1<<20) != false {
		t.Error("Off must never yield")
	}
	// Auto: yields exactly when the host has fewer cores than threads.
	n := runtime.NumCPU()
	if got := Enabled(Auto, n+1); !got {
		t.Errorf("Auto with threads=%d on %d CPUs = false, want true", n+1, n)
	}
	if got := Enabled(Auto, n); got {
		t.Errorf("Auto with threads=%d on %d CPUs = true, want false", n, n)
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{Auto: "auto", On: "on", Off: "off"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}
