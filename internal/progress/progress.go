// Package progress provides the livelock watchdog used by the experiment
// drivers. The paper reports "livelock" cells for configurations where the
// encounter-time-locking TM stops making progress (Section III-D); the
// watchdog turns "no commits for a while" (or an absolute deadline) into a
// cancelled context plus a livelock verdict, so a run can be reported the
// way the paper's tables report it.
package progress

import (
	"context"
	"sync"
	"time"
)

// Watchdog cancels a context when the observed commit counter stalls or a
// deadline passes.
type Watchdog struct {
	cancel context.CancelFunc

	mu        sync.Mutex
	fired     bool
	reason    string
	stopCh    chan struct{}
	stopped   sync.Once
	waitGroup sync.WaitGroup
}

// Watch starts monitoring. sample must return a monotonically non-decreasing
// progress counter (e.g. total commits). If the counter does not move for
// stallWindow, or the run exceeds deadline, the returned context is
// cancelled and the watchdog records a livelock verdict. Non-positive
// durations disable the corresponding check.
func Watch(parent context.Context, sample func() int64, stallWindow, deadline time.Duration) (context.Context, *Watchdog) {
	ctx, cancel := context.WithCancel(parent)
	w := &Watchdog{cancel: cancel, stopCh: make(chan struct{})}

	tick := 10 * time.Millisecond
	if stallWindow > 0 && stallWindow/4 > tick {
		tick = stallWindow / 4
	}

	w.waitGroup.Add(1)
	go func() {
		defer w.waitGroup.Done()
		start := time.Now()
		last := sample()
		lastMove := start
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-w.stopCh:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			now := time.Now()
			cur := sample()
			if cur != last {
				last = cur
				lastMove = now
			}
			if stallWindow > 0 && now.Sub(lastMove) >= stallWindow {
				w.fire("no commits for " + stallWindow.String())
				return
			}
			if deadline > 0 && now.Sub(start) >= deadline {
				w.fire("deadline " + deadline.String() + " exceeded")
				return
			}
		}
	}()
	return ctx, w
}

func (w *Watchdog) fire(reason string) {
	w.mu.Lock()
	w.fired = true
	w.reason = reason
	w.mu.Unlock()
	w.cancel()
}

// Stop ends monitoring and reports whether the watchdog declared livelock.
// It is safe to call multiple times.
func (w *Watchdog) Stop() bool {
	w.stopped.Do(func() { close(w.stopCh) })
	w.waitGroup.Wait()
	w.cancel() // release the derived context in the normal-completion path
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

// Reason describes why the watchdog fired ("" if it did not).
func (w *Watchdog) Reason() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reason
}
