package progress

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestNoFireOnSteadyProgress(t *testing.T) {
	var n atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				n.Add(1)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	ctx, wd := Watch(context.Background(), n.Load, 100*time.Millisecond, 0)
	time.Sleep(300 * time.Millisecond)
	close(stop)
	if wd.Stop() {
		t.Errorf("watchdog fired on steady progress: %s", wd.Reason())
	}
	if ctx.Err() == nil {
		// Stop cancels the context after normal completion.
		t.Error("context not released after Stop")
	}
}

func TestFiresOnStall(t *testing.T) {
	var n atomic.Int64
	ctx, wd := Watch(context.Background(), n.Load, 50*time.Millisecond, 0)
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog never fired on a stalled counter")
	}
	if !wd.Stop() {
		t.Error("Stop() = false after firing")
	}
	if wd.Reason() == "" {
		t.Error("empty reason after firing")
	}
}

func TestFiresOnDeadline(t *testing.T) {
	var n atomic.Int64
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				n.Add(1) // constant progress: only the deadline can fire
			}
		}
	}()
	defer close(stop)
	ctx, wd := Watch(context.Background(), n.Load, 0, 60*time.Millisecond)
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !wd.Stop() {
		t.Error("Stop() = false after deadline")
	}
}

func TestDisabledChecksNeverFire(t *testing.T) {
	var n atomic.Int64
	_, wd := Watch(context.Background(), n.Load, 0, 0)
	time.Sleep(80 * time.Millisecond)
	if wd.Stop() {
		t.Error("watchdog with disabled checks fired")
	}
}

func TestStopIdempotent(t *testing.T) {
	var n atomic.Int64
	_, wd := Watch(context.Background(), n.Load, 0, 0)
	a := wd.Stop()
	b := wd.Stop()
	if a != b {
		t.Error("Stop not idempotent")
	}
}

func TestParentCancellationStopsWatcher(t *testing.T) {
	var n atomic.Int64
	parent, cancel := context.WithCancel(context.Background())
	ctx, wd := Watch(parent, n.Load, time.Hour, time.Hour)
	cancel()
	<-ctx.Done()
	if wd.Stop() {
		t.Error("parent cancellation misreported as livelock")
	}
}
