package trace

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"votm/internal/rac"
)

// fakeView is a controllable ViewProbe.
type fakeView struct {
	mu  sync.Mutex
	q   int
	tot rac.Totals
}

func (f *fakeView) Quota() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.q
}

func (f *fakeView) Totals() rac.Totals {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tot
}

func (f *fakeView) set(q int, tot rac.Totals) {
	f.mu.Lock()
	f.q = q
	f.tot = tot
	f.mu.Unlock()
}

func TestSamplerCollectsSeries(t *testing.T) {
	fv := &fakeView{}
	fv.set(8, rac.Totals{})
	s := StartSampler(fv, 5*time.Millisecond)
	fv.set(8, rac.Totals{Commits: 10, Aborts: 30, SuccessNs: 1000, AbortNs: 21000})
	time.Sleep(25 * time.Millisecond)
	fv.set(4, rac.Totals{Commits: 20, Aborts: 40, SuccessNs: 2000, AbortNs: 22000})
	time.Sleep(25 * time.Millisecond)
	series := s.Stop()
	if len(series) < 3 {
		t.Fatalf("only %d samples", len(series))
	}
	last := series[len(series)-1]
	if last.Quota != 4 || last.Commits != 20 || last.Aborts != 40 {
		t.Errorf("last sample = %+v", last)
	}
	// Offsets are monotonically non-decreasing.
	for i := 1; i < len(series); i++ {
		if series[i].Offset < series[i-1].Offset {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	// The first interval saw δ = 21000/(1000·(8−1)) = 3.
	found := false
	for _, p := range series {
		if !math.IsNaN(p.Delta) && math.Abs(p.Delta-3.0) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a δ=3 sample; series = %+v", series)
	}
}

func TestSamplerDeltaNaNCases(t *testing.T) {
	fv := &fakeView{}
	fv.set(1, rac.Totals{Commits: 5, SuccessNs: 1000})
	s := StartSampler(fv, time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	series := s.Stop()
	for _, p := range series {
		if !math.IsNaN(p.Delta) {
			t.Fatalf("δ at Q=1 must be NaN, got %v", p.Delta)
		}
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	fv := &fakeView{}
	fv.set(2, rac.Totals{})
	s := StartSampler(fv, time.Millisecond)
	a := s.Stop()
	b := s.Stop()
	if len(a) != len(b) {
		t.Errorf("second Stop changed the series: %d vs %d", len(a), len(b))
	}
}

func TestSamplerCSV(t *testing.T) {
	fv := &fakeView{}
	fv.set(4, rac.Totals{Commits: 1, Aborts: 2, SuccessNs: 100, AbortNs: 600})
	s := StartSampler(fv, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "offset_ms,quota,commits,aborts,escalations,panics,delta\n") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, ",4,1,2,") {
		t.Errorf("missing data row: %q", out)
	}
}

func TestSamplerSparkline(t *testing.T) {
	fv := &fakeView{}
	fv.set(16, rac.Totals{})
	s := StartSampler(fv, 2*time.Millisecond)
	time.Sleep(8 * time.Millisecond)
	fv.set(1, rac.Totals{})
	time.Sleep(8 * time.Millisecond)
	s.Stop()
	sp := s.Sparkline()
	if !strings.Contains(sp, "4") || !strings.Contains(sp, "0") {
		t.Errorf("sparkline %q missing 16→1 transition (log2: 4→0)", sp)
	}
}

func TestSamplerDefaultInterval(t *testing.T) {
	fv := &fakeView{}
	fv.set(2, rac.Totals{})
	s := StartSampler(fv, 0) // default interval
	time.Sleep(5 * time.Millisecond)
	if got := s.Stop(); len(got) == 0 {
		t.Error("no samples with default interval")
	}
}
