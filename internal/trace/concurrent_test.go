package trace

import (
	"sync"
	"testing"
)

// TestRecorderConcurrentEmitters hammers one Recorder from many goroutines,
// each emitting a monotone quota walk for its own view, and checks the
// per-view ordering invariant the runtime depends on: within a view, event
// k's From equals event k−1's To (chained transitions, no drops, no
// reorders). An unbounded recorder must retain every event.
func TestRecorderConcurrentEmitters(t *testing.T) {
	const (
		emitters = 8
		perView  = 500
	)
	r := NewRecorder(0) // unbounded

	var wg sync.WaitGroup
	for v := 0; v < emitters; v++ {
		wg.Add(1)
		go func(viewID int) {
			defer wg.Done()
			hook := r.Hook()
			// Walk Q up then down so From/To form a chain unique to the
			// view: 1→2→…→perView→…→1.
			q := 1
			for i := 0; i < perView; i++ {
				hook(viewID, q, q+1)
				q++
			}
			for i := 0; i < perView; i++ {
				hook(viewID, q, q-1)
				q--
			}
		}(v)
	}
	wg.Wait()

	want := emitters * perView * 2
	if got := r.Len(); got != want {
		t.Fatalf("recorder retained %d events, want %d (dropped under concurrency)", got, want)
	}

	perViewEvents := r.PerView()
	if len(perViewEvents) != emitters {
		t.Fatalf("events span %d views, want %d", len(perViewEvents), emitters)
	}
	for viewID, evs := range perViewEvents {
		if len(evs) != perView*2 {
			t.Errorf("view %d has %d events, want %d", viewID, len(evs), perView*2)
			continue
		}
		if evs[0].From != 1 {
			t.Errorf("view %d first event From = %d, want 1", viewID, evs[0].From)
		}
		for k := 1; k < len(evs); k++ {
			if evs[k].From != evs[k-1].To {
				t.Fatalf("view %d: event %d From=%d does not chain from prior To=%d (reordered or dropped)",
					viewID, k, evs[k].From, evs[k-1].To)
			}
		}
		if last := evs[len(evs)-1]; last.To != 1 {
			t.Errorf("view %d final To = %d, want 1", viewID, last.To)
		}
	}

	// Global order must also be time-consistent: When values non-decreasing
	// as appended (the mutex serializes Record, so append order is the
	// happens-before order of the emitters).
	all := r.Events()
	for i := 1; i < len(all); i++ {
		if all[i].When.Before(all[i-1].When) {
			t.Fatalf("event %d timestamped before its predecessor", i)
		}
	}
}

// TestRecorderLimitKeepsNewest: a bounded recorder under concurrent load
// keeps exactly the newest `limit` events and the per-view chain property
// still holds on what survives.
func TestRecorderLimitKeepsNewest(t *testing.T) {
	const limit = 64
	r := NewRecorder(limit)

	var wg sync.WaitGroup
	for v := 0; v < 4; v++ {
		wg.Add(1)
		go func(viewID int) {
			defer wg.Done()
			q := 1
			for i := 0; i < 1000; i++ {
				r.Record(viewID, q, q+1)
				q++
			}
		}(v)
	}
	wg.Wait()

	if got := r.Len(); got != limit {
		t.Fatalf("bounded recorder retained %d events, want %d", got, limit)
	}
	for viewID, evs := range r.PerView() {
		for k := 1; k < len(evs); k++ {
			// Within a view each emitter's walk is strictly increasing, so
			// even a truncated suffix must chain.
			if evs[k].From != evs[k-1].To {
				t.Fatalf("view %d: surviving events broke the chain: %v then %v",
					viewID, evs[k-1], evs[k])
			}
		}
		// The retained suffix must be from the top of the walk — the newest
		// events — not an arbitrary window.
		if last := evs[len(evs)-1]; last.To != 1001 {
			t.Fatalf("view %d newest retained To = %d, want 1001", viewID, last.To)
		}
	}
}
