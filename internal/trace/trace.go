// Package trace records RAC quota timelines. The paper's analysis is about
// *when* admission control reacts ("RAC will promptly drive Q down"), so
// the library can emit an event for every quota move; Recorder collects
// them and renders a human-readable timeline, which the contention example
// and the adjustment-window ablation use.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// QuotaEvent is one admission-quota change on one view.
type QuotaEvent struct {
	When   time.Time
	ViewID int
	From   int
	To     int
}

func (e QuotaEvent) String() string {
	return fmt.Sprintf("view %d: Q %d -> %d", e.ViewID, e.From, e.To)
}

// Recorder collects quota events; safe for concurrent use. The zero value
// is unbounded; NewRecorder caps retention (oldest dropped first).
type Recorder struct {
	mu     sync.Mutex
	events []QuotaEvent
	limit  int
	start  time.Time
}

// NewRecorder creates a recorder retaining at most limit events
// (limit <= 0 means unbounded).
func NewRecorder(limit int) *Recorder {
	return &Recorder{limit: limit, start: time.Now()}
}

// Record appends an event; it is shaped to plug directly into the runtime's
// QuotaTrace callback via Hook.
func (r *Recorder) Record(viewID, from, to int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.start.IsZero() {
		r.start = time.Now()
	}
	r.events = append(r.events, QuotaEvent{
		When: time.Now(), ViewID: viewID, From: from, To: to,
	})
	if r.limit > 0 && len(r.events) > r.limit {
		r.events = r.events[len(r.events)-r.limit:]
	}
}

// Hook returns the Record method in the runtime callback shape.
func (r *Recorder) Hook() func(viewID, from, to int) {
	return r.Record
}

// Events returns a copy of the recorded events in order.
func (r *Recorder) Events() []QuotaEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QuotaEvent, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Reset clears the recorder and restarts its clock.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = r.events[:0]
	r.start = time.Now()
}

// Timeline renders the events of one view as "Q0 -(t)-> Q1 -(t)-> Q2" with
// millisecond offsets from the recorder's start.
func (r *Recorder) Timeline(viewID int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	first := true
	for _, e := range r.events {
		if e.ViewID != viewID {
			continue
		}
		if first {
			fmt.Fprintf(&b, "%d", e.From)
			first = false
		}
		fmt.Fprintf(&b, " -(%dms)-> %d",
			e.When.Sub(r.start).Milliseconds(), e.To)
	}
	if first {
		return "(no quota changes)"
	}
	return b.String()
}

// PerView groups events by view ID.
func (r *Recorder) PerView() map[int][]QuotaEvent {
	out := make(map[int][]QuotaEvent)
	for _, e := range r.Events() {
		out[e.ViewID] = append(out[e.ViewID], e)
	}
	return out
}
