package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
	"sync"
	"time"

	"votm/internal/rac"
)

// Sample is one point of a view's contention time series.
type Sample struct {
	Offset      time.Duration // since sampling started
	Quota       int
	Commits     int64
	Aborts      int64
	Escalations int64   // retry-budget escalations to exclusive mode
	Panics      int64   // user panics unwound through the runtime
	Delta       float64 // δ(Q) over the interval since the previous sample
}

// ViewProbe is the slice of the view API the sampler needs (satisfied by
// *core.View / *votm.View).
type ViewProbe interface {
	Quota() int
	Totals() rac.Totals
}

// Sampler periodically records a view's quota and windowed δ(Q), producing
// the time series behind the paper's "when and how" analysis: when δ(Q)
// crosses 1 and how quickly the quota reacts.
type Sampler struct {
	mu      sync.Mutex
	samples []Sample
	prev    rac.Totals
	start   time.Time

	stop chan struct{}
	done chan struct{}
}

// StartSampler samples view every interval until Stop is called.
func StartSampler(view ViewProbe, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	s := &Sampler{
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-s.stop:
				s.record(view)
				return
			case <-ticker.C:
				s.record(view)
			}
		}
	}()
	return s
}

func (s *Sampler) record(view ViewProbe) {
	cur := view.Totals()
	q := view.Quota()
	s.mu.Lock()
	defer s.mu.Unlock()
	dSuccess := cur.SuccessNs - s.prev.SuccessNs
	dAbort := cur.AbortNs - s.prev.AbortNs
	delta := math.NaN()
	if q > 1 && dSuccess > 0 {
		delta = float64(dAbort) / (float64(dSuccess) * float64(q-1))
	}
	s.samples = append(s.samples, Sample{
		Offset:      time.Since(s.start),
		Quota:       q,
		Commits:     cur.Commits,
		Aborts:      cur.Aborts,
		Escalations: cur.Escalations,
		Panics:      cur.Panics,
		Delta:       delta,
	})
	s.prev = cur
}

// Stop ends sampling (recording one final point) and returns the series.
func (s *Sampler) Stop() []Sample {
	select {
	case <-s.done:
	default:
		close(s.stop)
		<-s.done
	}
	return s.Samples()
}

// Samples returns a copy of the series collected so far.
func (s *Sampler) Samples() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, len(s.samples))
	copy(out, s.samples)
	return out
}

// WriteCSV emits the series as CSV with a header row.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "offset_ms,quota,commits,aborts,escalations,panics,delta"); err != nil {
		return err
	}
	for _, p := range s.Samples() {
		d := "NaN"
		if !math.IsNaN(p.Delta) {
			d = fmt.Sprintf("%.6f", p.Delta)
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%s\n",
			p.Offset.Milliseconds(), p.Quota, p.Commits, p.Aborts,
			p.Escalations, p.Panics, d); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders the quota series as a compact ASCII strip (one char per
// sample, log2 of the quota), handy for terminal output:
// "4443221111111122" shows RAC throttling then probing.
func (s *Sampler) Sparkline() string {
	var b strings.Builder
	for _, p := range s.Samples() {
		lg := 0
		for q := p.Quota; q > 1; q >>= 1 {
			lg++
		}
		b.WriteByte(byte('0' + lg%10))
	}
	return b.String()
}
