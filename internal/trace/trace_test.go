package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1, 16, 8)
	r.Record(1, 8, 4)
	r.Record(2, 16, 16)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	ev := r.Events()
	if ev[0].From != 16 || ev[0].To != 8 || ev[0].ViewID != 1 {
		t.Errorf("event 0 = %+v", ev[0])
	}
	if ev[0].String() == "" {
		t.Error("empty event string")
	}
	// Events() must be a copy.
	ev[0].ViewID = 99
	if r.Events()[0].ViewID != 1 {
		t.Error("Events leaked internal slice")
	}
}

func TestLimitDropsOldest(t *testing.T) {
	r := NewRecorder(2)
	r.Record(1, 4, 3)
	r.Record(1, 3, 2)
	r.Record(1, 2, 1)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	ev := r.Events()
	if ev[0].To != 2 || ev[1].To != 1 {
		t.Errorf("retained wrong events: %+v", ev)
	}
}

func TestTimeline(t *testing.T) {
	r := NewRecorder(0)
	if got := r.Timeline(1); got != "(no quota changes)" {
		t.Errorf("empty timeline = %q", got)
	}
	r.Record(1, 16, 8)
	r.Record(2, 16, 4) // other view: excluded
	r.Record(1, 8, 4)
	tl := r.Timeline(1)
	if !strings.HasPrefix(tl, "16 ") || !strings.Contains(tl, "-> 8") || !strings.Contains(tl, "-> 4") {
		t.Errorf("timeline = %q", tl)
	}
	if strings.Count(tl, "->") != 2 {
		t.Errorf("timeline has wrong arrow count: %q", tl)
	}
}

func TestPerView(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1, 16, 8)
	r.Record(2, 16, 4)
	r.Record(1, 8, 16)
	pv := r.PerView()
	if len(pv[1]) != 2 || len(pv[2]) != 1 {
		t.Errorf("PerView = %v", pv)
	}
}

func TestReset(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1, 2, 1)
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHookAndConcurrency(t *testing.T) {
	r := NewRecorder(0)
	hook := r.Hook()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				hook(id, i, i+1)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func TestZeroValueRecorder(t *testing.T) {
	var r Recorder
	r.Record(1, 2, 1)
	if r.Len() != 1 {
		t.Error("zero-value recorder unusable")
	}
}
