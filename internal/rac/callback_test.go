package rac

import (
	"testing"
	"time"
)

func TestOnQuotaChangeCallback(t *testing.T) {
	type move struct{ from, to int }
	var moves []move
	c := New(Params{
		Threads:      8,
		InitialQuota: 8,
		OnQuotaChange: func(from, to int) {
			moves = append(moves, move{from, to})
		},
	})
	c.SetQuota(4)
	c.SetQuota(4) // no-op: must not fire
	c.SetQuota(1)
	if len(moves) != 2 {
		t.Fatalf("moves = %v", moves)
	}
	if moves[0] != (move{8, 4}) || moves[1] != (move{4, 1}) {
		t.Errorf("moves = %v", moves)
	}
}

func TestOnQuotaChangeFiresOnAdaptiveMoves(t *testing.T) {
	fired := 0
	c := New(Params{
		Threads: 8, InitialQuota: 8, Adaptive: true, AdjustEvery: 4,
		OnQuotaChange: func(from, to int) {
			fired++
			if to >= from {
				t.Errorf("hot window must halve: %d -> %d", from, to)
			}
		},
	})
	driveWindow(c, time.Microsecond, 50*time.Millisecond)
	if fired == 0 {
		t.Error("adaptive halving did not fire the callback")
	}
}

func TestLockElisionPolicyJumpsToExtremes(t *testing.T) {
	c := New(Params{Threads: 16, InitialQuota: 16, Adaptive: true,
		AdjustEvery: 16, Policy: LockElision})
	// Hot window: straight to 1, not 8.
	driveWindow(c, time.Microsecond, 100*time.Millisecond)
	if got := c.Quota(); got != 1 {
		t.Fatalf("hot window Q = %d, want 1 (jump, not halve)", got)
	}
	// Probe back out, then a cold window must jump straight to N.
	for i := 0; i < 8; i++ { // default ProbeAtLockEvery = 8
		driveWindow(c, 10*time.Millisecond, 0)
	}
	if got := c.Quota(); got != 2 {
		t.Fatalf("after probe Q = %d, want 2", got)
	}
	driveWindow(c, 10*time.Millisecond, 0)
	if got := c.Quota(); got != 16 {
		t.Errorf("cold window Q = %d, want 16 (jump, not double)", got)
	}
	if HalveDouble.String() != "halve-double" || LockElision.String() != "lock-elision" {
		t.Error("Policy stringer wrong")
	}
}
