// Package rac implements Restricted Admission Control (Leung, Chen, Huang:
// "Restricted Admission Control in View-Oriented Transactional Memory",
// J. Supercomputing 2012), the concurrency-control scheme each VOTM view
// runs independently.
//
// A controller admits at most Q threads into a view concurrently
// (1 ≤ Q ≤ N). At Q == 1 admission degenerates to a lock and the caller may
// run uninstrumented (lock-mode). The adaptive policy estimates contention
// with the paper's Equation 5,
//
//	δ(Q) = cycles_in_aborted_tx / (cycles_in_successful_tx · (Q−1)),
//
// over a sliding window, halving Q when δ(Q) > 1 and doubling it when δ(Q)
// is low (Observation 1). CPU cycles are approximated by monotonic
// nanoseconds; δ is a ratio, so the unit cancels.
package rac

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Enter once the controller has been closed
// (its view was destroyed): no further admissions are granted.
var ErrClosed = errors.New("rac: controller closed")

// Mode says how an admitted thread must execute its transaction.
type Mode int

const (
	// ModeTM: run an instrumented transaction on the view's STM engine.
	ModeTM Mode = iota
	// ModeLock: the caller holds the view exclusively (Q was 1 at
	// admission); it may access the heap directly with no TM overhead.
	ModeLock
)

func (m Mode) String() string {
	if m == ModeLock {
		return "lock"
	}
	return "tm"
}

// Outcome of one admitted transaction attempt.
type Outcome int

const (
	// Committed: the attempt committed successfully.
	Committed Outcome = iota
	// Aborted: the attempt rolled back due to a conflict.
	Aborted
)

// Policy selects how the adaptive controller moves the quota.
type Policy int

const (
	// HalveDouble is the paper's RAC scheme: halve Q when δ(Q) > 1,
	// double it when δ(Q) is low — able to settle at interior quotas.
	HalveDouble Policy = iota
	// LockElision models the adaptive-lock / speculative-lock-elision
	// systems of the paper's §IV-B, which only choose between the two
	// extremes: exclusive access (Q = 1) under contention, or all threads
	// (Q = N) otherwise. The paper argues RAC is superior exactly because
	// the optimal quota can lie strictly between 1 and N.
	LockElision
)

func (p Policy) String() string {
	if p == LockElision {
		return "lock-elision"
	}
	return "halve-double"
}

// Params configures a Controller.
type Params struct {
	// Threads is N, the maximum number of threads (upper bound for Q).
	Threads int
	// InitialQuota is the starting Q. Values < 1 select the adaptive
	// policy starting at Q = Threads (the create_view(q) contract).
	InitialQuota int
	// Adaptive enables dynamic adjustment even when InitialQuota ≥ 1.
	Adaptive bool
	// HighDelta halves Q when window δ(Q) exceeds it. Default 1.0 (Eq. 5).
	HighDelta float64
	// LowDelta doubles Q when window δ(Q) falls below it. Default 0.5.
	LowDelta float64
	// AdjustEvery is the adjustment window length in completed attempts.
	// Default 256.
	AdjustEvery int64
	// ProbeAtLockEvery controls upward probing out of Q == 1, where δ(Q)
	// is undefined: after this many consecutive windows at Q == 1, Q is
	// raised to 2 to re-measure contention. Negative disables probing
	// (sticky lock mode); 0 takes the default of 8.
	ProbeAtLockEvery int
	// OnQuotaChange, when non-nil, is invoked after every quota change
	// (adaptive or manual) with the previous and new values. It runs with
	// the controller's lock held: it must be fast and must not call back
	// into the controller.
	OnQuotaChange func(from, to int)
	// Policy selects the adaptive movement rule. Default HalveDouble
	// (the paper's RAC); LockElision is the §IV-B adaptive-lock baseline.
	Policy Policy
}

func (p *Params) fill() {
	if p.Threads <= 0 {
		panic("rac: Params.Threads must be positive")
	}
	if p.InitialQuota < 1 {
		p.InitialQuota = p.Threads
		p.Adaptive = true
	}
	if p.InitialQuota > p.Threads {
		p.InitialQuota = p.Threads
	}
	if p.HighDelta == 0 {
		p.HighDelta = 1.0
	}
	if p.LowDelta == 0 {
		p.LowDelta = 0.5
	}
	if p.AdjustEvery == 0 {
		p.AdjustEvery = 256
	}
	if p.ProbeAtLockEvery == 0 {
		p.ProbeAtLockEvery = 8
	}
}

// Totals are cumulative per-view statistics, the raw material for the
// paper's table rows (#abort, #tx, CPUcycles_aborted, CPUcycles_successful).
type Totals struct {
	Commits   int64
	Aborts    int64
	SuccessNs int64 // time spent in attempts that committed
	AbortNs   int64 // time spent in attempts that aborted

	// Escalations counts transactions that exhausted their conflict-retry
	// budget and ran to completion in exclusive lock mode — the starvation
	// escape hatch (each escalation is one starved transaction rescued).
	Escalations int64
	// Panics counts user panics that unwound a transaction body; every one
	// was rolled back and its admission slot released before re-raising.
	Panics int64

	// Groups counts committed group transactions — single admissions that
	// carried several independent logical operations (votmd's group-commit
	// shard workers). GroupOps is the total operation count across them, so
	// GroupOps/Groups is the mean group size: how much per-transaction
	// overhead (one RAC admission, one begin/commit, at Q = 1 one lock
	// acquisition) the batching amortized.
	Groups   int64
	GroupOps int64
}

// MeanGroup returns the mean committed group size (GroupOps / Groups), or
// NaN when no group has committed.
func (t Totals) MeanGroup() float64 {
	if t.Groups == 0 {
		return math.NaN()
	}
	return float64(t.GroupOps) / float64(t.Groups)
}

// Delta evaluates Equation 5 over the totals at quota q.
//
// It returns NaN when q <= 1 or nothing has committed yet: Eq. 5 divides by
// (q−1), so δ is undefined at the lock-mode quota — the paper's "N/A"
// cells. NaN is the single sentinel shared by every δ implementation in the
// repo (theory.DeltaQ, racsim.Workload.Delta); callers must treat it as
// "no signal", never compare it (all comparisons with NaN are false, so
// adaptive logic holds Q).
func (t Totals) Delta(q int) float64 {
	if q <= 1 || t.SuccessNs == 0 {
		return math.NaN()
	}
	return float64(t.AbortNs) / (float64(t.SuccessNs) * float64(q-1))
}

// Signal is the controller's most recently published contention sample: the
// quota in force plus the last completed adjustment window's δ(Q) and abort
// rate. It is published through an atomic pointer so hot paths — votmd's
// adaptive batcher reads it once per drain cycle — never touch the
// controller mutex.
type Signal struct {
	// Quota is the current admission quota Q.
	Quota int
	// Delta is the last window's δ(Q), evaluated at the quota the window
	// ran under. NaN is the no-signal sentinel (Q ≤ 1, where Eq. 5 is
	// undefined, or no window completed yet); like Totals.Delta, callers
	// must never compare it — all comparisons with NaN are false.
	Delta float64
	// AbortRate is the last window's aborted share of completed attempts
	// (0 before any window completes).
	AbortRate float64
	// Windows counts completed adjustment windows, so pollers can tell a
	// fresh sample from a re-read.
	Windows int64
}

// Controller is one view's admission controller.
type Controller struct {
	mu         sync.Mutex
	params     Params
	q          int
	p          int // threads currently admitted
	lockActive bool
	paused     bool // admissions suspended (engine switch or escalation)
	closed     bool // view destroyed: admissions permanently rejected
	waiters    int
	gate       chan struct{}

	// pauseSem serializes pausers (engine switches and escalations): without
	// it two concurrent PauseAndDrain calls could both observe p == 0 and
	// both believe they hold the view exclusively.
	pauseSem chan struct{}

	totals Totals

	// adjustment window
	winSuccessNs int64
	winAbortNs   int64
	winCommits   int64
	winAborts    int64
	winDone      int64
	windows      int64 // completed adjustment windows
	lockWindows  int   // consecutive windows spent at Q == 1

	// sig is the lock-free contention sample (see Signal); never nil after
	// New. adjustLocked publishes a full sample per window; setQuotaLocked
	// refreshes the quota between windows (manual SetQuota, lock probes).
	sig atomic.Pointer[Signal]

	// quota residence tracking (time spent at each Q)
	residence  map[int]time.Duration
	lastChange time.Time
	quotaMoves int64
}

// New creates a controller. See Params for the adaptive-policy contract.
func New(p Params) *Controller {
	p.fill()
	c := &Controller{
		params:     p,
		q:          p.InitialQuota,
		gate:       make(chan struct{}),
		pauseSem:   make(chan struct{}, 1),
		residence:  make(map[int]time.Duration),
		lastChange: time.Now(),
	}
	c.sig.Store(&Signal{Quota: c.q, Delta: math.NaN()})
	return c
}

// Signal returns the most recent contention sample with a single atomic
// pointer load — no lock, safe on worker hot paths.
func (c *Controller) Signal() Signal { return *c.sig.Load() }

// Enter blocks until the caller is admitted to the view or ctx is done.
// The returned Mode tells the caller whether it may run uninstrumented.
//
// Invariants: at most Q threads are admitted at once; while a ModeLock
// holder is inside, nothing else is admitted (even if Q was raised
// concurrently), so an uninstrumented transaction can never run beside an
// instrumented one.
func (c *Controller) Enter(ctx context.Context) (Mode, error) {
	c.mu.Lock()
	for {
		if c.closed {
			c.mu.Unlock()
			return ModeTM, ErrClosed
		}
		if !c.paused && !c.lockActive && c.p < c.q {
			c.p++
			mode := ModeTM
			if c.q == 1 {
				mode = ModeLock
				c.lockActive = true
			}
			c.mu.Unlock()
			return mode, nil
		}
		gate := c.gate
		c.waiters++
		c.mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			c.mu.Lock()
			c.waiters--
			c.mu.Unlock()
			return ModeTM, ctx.Err()
		}
		c.mu.Lock()
		c.waiters--
	}
}

// Exit records the attempt's outcome and releases the admission slot.
// mode must be the Mode returned by the matching Enter; d is the wall time
// the attempt took (the cycles proxy for Eq. 5).
func (c *Controller) Exit(mode Mode, outcome Outcome, d time.Duration) {
	ns := d.Nanoseconds()
	c.mu.Lock()
	c.p--
	if c.p < 0 {
		c.mu.Unlock()
		panic("rac: Exit without matching Enter")
	}
	if mode == ModeLock {
		c.lockActive = false
	}
	switch outcome {
	case Committed:
		c.totals.Commits++
		c.totals.SuccessNs += ns
		c.winSuccessNs += ns
		c.winCommits++
	case Aborted:
		c.totals.Aborts++
		c.totals.AbortNs += ns
		c.winAbortNs += ns
		c.winAborts++
	}
	c.winDone++
	if c.params.Adaptive && c.winDone >= c.params.AdjustEvery {
		c.adjustLocked()
	}
	c.broadcastLocked()
	c.mu.Unlock()
}

// adjustLocked applies Observation 1 to the finished window. Caller holds mu.
func (c *Controller) adjustLocked() {
	winTotals := Totals{SuccessNs: c.winSuccessNs, AbortNs: c.winAbortNs}
	delta := winTotals.Delta(c.q)
	abortRate := 0.0
	if total := c.winCommits + c.winAborts; total > 0 {
		abortRate = float64(c.winAborts) / float64(total)
	}
	switch {
	case c.q == 1:
		c.lockWindows++
		if c.params.ProbeAtLockEvery > 0 && c.lockWindows >= c.params.ProbeAtLockEvery {
			c.setQuotaLocked(2)
			c.lockWindows = 0
		}
	case delta > c.params.HighDelta:
		if c.params.Policy == LockElision {
			c.setQuotaLocked(1)
		} else {
			c.setQuotaLocked(c.q / 2)
		}
	case delta < c.params.LowDelta:
		if c.params.Policy == LockElision {
			c.setQuotaLocked(c.params.Threads)
		} else {
			c.setQuotaLocked(c.q * 2)
		}
	}
	c.windows++
	// Publish the window sample at the quota it ran under, paired with the
	// quota now in force (δ at the pre-adjust Q is what moved it).
	c.sig.Store(&Signal{Quota: c.q, Delta: delta, AbortRate: abortRate, Windows: c.windows})
	c.winSuccessNs, c.winAbortNs, c.winCommits, c.winAborts, c.winDone = 0, 0, 0, 0, 0
}

func (c *Controller) setQuotaLocked(q int) {
	if q < 1 {
		q = 1
	}
	if q > c.params.Threads {
		q = c.params.Threads
	}
	if q == c.q {
		return
	}
	now := time.Now()
	c.residence[c.q] += now.Sub(c.lastChange)
	c.lastChange = now
	prev := c.q
	c.q = q
	c.quotaMoves++
	if q != 1 {
		c.lockWindows = 0
	}
	// Refresh the published quota, keeping the last window's δ/abort-rate
	// sample (a full sample is published once per window by adjustLocked).
	old := c.sig.Load()
	c.sig.Store(&Signal{Quota: q, Delta: old.Delta, AbortRate: old.AbortRate, Windows: old.Windows})
	if c.params.OnQuotaChange != nil {
		c.params.OnQuotaChange(prev, q)
	}
}

func (c *Controller) broadcastLocked() {
	if c.waiters > 0 {
		close(c.gate)
		c.gate = make(chan struct{})
	}
}

// PauseAndDrain suspends new admissions and blocks until every admitted
// thread has exited — the quiescence point for an engine switch or an
// escalated (exclusive) execution. Pausers are mutually exclusive: a second
// PauseAndDrain blocks until the first pauser Resumes, so two callers can
// never both believe they hold the view exclusively.
//
// On success the caller owns the pause and must call Resume exactly once.
// On error (ctx cancelled while waiting or draining) the pause has been
// rolled back; the caller must not call Resume (a spurious Resume is
// harmless but releases nothing).
func (c *Controller) PauseAndDrain(ctx context.Context) error {
	select {
	case c.pauseSem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	c.mu.Lock()
	c.paused = true
	for c.p > 0 {
		gate := c.gate
		c.waiters++
		c.mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			c.mu.Lock()
			c.waiters--
			c.paused = false
			c.broadcastLocked()
			c.mu.Unlock()
			<-c.pauseSem
			return ctx.Err()
		}
		c.mu.Lock()
		c.waiters--
	}
	c.mu.Unlock()
	return nil
}

// Resume lifts a successful PauseAndDrain suspension and releases pause
// ownership to the next waiting pauser, if any.
func (c *Controller) Resume() {
	c.mu.Lock()
	owned := c.paused
	c.paused = false
	c.broadcastLocked()
	c.mu.Unlock()
	if owned {
		select {
		case <-c.pauseSem:
		default:
		}
	}
}

// Close permanently rejects admissions (the view was destroyed) and wakes
// every waiter so blocked Enter calls return ErrClosed promptly instead of
// hanging until their context expires.
func (c *Controller) Close() {
	c.mu.Lock()
	c.closed = true
	c.broadcastLocked()
	c.mu.Unlock()
}

// RecordEscalated accounts one escalated execution: a transaction that
// exhausted its conflict-retry budget and ran in exclusive lock mode while
// admissions were drained (so it never passed Enter/Exit).
func (c *Controller) RecordEscalated(outcome Outcome, d time.Duration) {
	ns := d.Nanoseconds()
	c.mu.Lock()
	c.totals.Escalations++
	switch outcome {
	case Committed:
		c.totals.Commits++
		c.totals.SuccessNs += ns
	case Aborted:
		c.totals.Aborts++
		c.totals.AbortNs += ns
	}
	c.mu.Unlock()
}

// RecordGroup accounts one committed group transaction of ops independent
// logical operations. The attempt itself is accounted normally via Exit (or
// RecordEscalated); this only feeds the Groups/GroupOps batching meters.
func (c *Controller) RecordGroup(ops int64) {
	c.mu.Lock()
	c.totals.Groups++
	c.totals.GroupOps += ops
	c.mu.Unlock()
}

// RecordPanic counts a user panic that unwound a transaction body on this
// view (the attempt itself is accounted separately as Aborted via Exit or
// Record).
func (c *Controller) RecordPanic() {
	c.mu.Lock()
	c.totals.Panics++
	c.mu.Unlock()
}

// Record accounts an attempt's outcome without admission control. It is
// used by views created with admission control disabled (the paper's
// "multi-TM" and plain "TM" versions), so their table statistics are
// collected identically to RAC-controlled views.
func (c *Controller) Record(outcome Outcome, d time.Duration) {
	ns := d.Nanoseconds()
	c.mu.Lock()
	switch outcome {
	case Committed:
		c.totals.Commits++
		c.totals.SuccessNs += ns
	case Aborted:
		c.totals.Aborts++
		c.totals.AbortNs += ns
	}
	c.mu.Unlock()
}

// Quota returns the current admission quota Q.
func (c *Controller) Quota() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.q
}

// SetQuota sets Q manually (the create_view static-quota path and tests).
func (c *Controller) SetQuota(q int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.setQuotaLocked(q)
	c.broadcastLocked()
}

// InFlight returns the number of currently admitted threads.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.p
}

// Adaptive reports whether dynamic adjustment is enabled.
func (c *Controller) Adaptive() bool { return c.params.Adaptive }

// Threads returns N.
func (c *Controller) Threads() int { return c.params.Threads }

// Totals returns a copy of the cumulative statistics.
func (c *Controller) Totals() Totals {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totals
}

// QuotaMoves returns how many times the adaptive policy changed Q.
func (c *Controller) QuotaMoves() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quotaMoves
}

// SettledQuota returns the quota the controller spent the most time at —
// the value reported in the paper's adaptive tables (Table VI and X "Q"
// columns) — breaking ties toward the current quota.
func (c *Controller) SettledQuota() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	res := make(map[int]time.Duration, len(c.residence)+1)
	for q, d := range c.residence {
		res[q] = d
	}
	res[c.q] += time.Since(c.lastChange)
	best, bestD := c.q, res[c.q]
	for q, d := range res {
		if d > bestD {
			best, bestD = q, d
		}
	}
	return best
}

func (c *Controller) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("rac.Controller(Q=%d P=%d N=%d adaptive=%v)",
		c.q, c.p, c.params.Threads, c.params.Adaptive)
}
