package rac

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{Threads: 8}
	p.fill()
	if p.InitialQuota != 8 || !p.Adaptive {
		t.Errorf("quota<1 must select adaptive at N: %+v", p)
	}
	if p.HighDelta != 1.0 || p.LowDelta != 0.5 || p.AdjustEvery != 256 || p.ProbeAtLockEvery != 8 {
		t.Errorf("defaults wrong: %+v", p)
	}
	p2 := Params{Threads: 4, InitialQuota: 99}
	p2.fill()
	if p2.InitialQuota != 4 {
		t.Errorf("quota must be clamped to N, got %d", p2.InitialQuota)
	}
	if p2.Adaptive {
		t.Error("static quota must not enable adaptive")
	}
}

func TestParamsInvalidThreadsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Threads=0 did not panic")
		}
	}()
	New(Params{Threads: 0})
}

func TestEnterExitBasic(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 2})
	ctx := context.Background()
	m1, err := c.Enter(ctx)
	if err != nil || m1 != ModeTM {
		t.Fatalf("Enter: %v %v", m1, err)
	}
	if c.InFlight() != 1 {
		t.Errorf("InFlight = %d", c.InFlight())
	}
	c.Exit(m1, Committed, time.Millisecond)
	if c.InFlight() != 0 {
		t.Errorf("InFlight after exit = %d", c.InFlight())
	}
	tot := c.Totals()
	if tot.Commits != 1 || tot.SuccessNs != int64(time.Millisecond) {
		t.Errorf("totals = %+v", tot)
	}
}

func TestLockModeAtQuotaOne(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 1})
	m, err := c.Enter(context.Background())
	if err != nil || m != ModeLock {
		t.Fatalf("Enter at Q=1: mode=%v err=%v", m, err)
	}
	c.Exit(m, Committed, time.Microsecond)
}

func TestQuotaNeverExceeded(t *testing.T) {
	const n, q, iters = 8, 3, 200
	c := New(Params{Threads: n, InitialQuota: q})
	var inside, maxInside, violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				m, err := c.Enter(context.Background())
				if err != nil {
					t.Errorf("Enter: %v", err)
					return
				}
				cur := inside.Add(1)
				for {
					old := maxInside.Load()
					if cur <= old || maxInside.CompareAndSwap(old, cur) {
						break
					}
				}
				if cur > q {
					violations.Add(1)
				}
				inside.Add(-1)
				c.Exit(m, Committed, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if violations.Load() > 0 {
		t.Errorf("%d admissions above quota (max inside %d > %d)",
			violations.Load(), maxInside.Load(), q)
	}
	if got := c.Totals().Commits; got != n*iters {
		t.Errorf("commits = %d, want %d", got, n*iters)
	}
}

func TestLockModeIsExclusive(t *testing.T) {
	const n = 8
	c := New(Params{Threads: n, InitialQuota: 1})
	var inside, violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m, _ := c.Enter(context.Background())
				if m != ModeLock {
					violations.Add(1)
				}
				if inside.Add(1) > 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				c.Exit(m, Committed, time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if violations.Load() > 0 {
		t.Errorf("%d lock-mode exclusivity violations", violations.Load())
	}
}

func TestLockModeInterlockWithQuotaRaise(t *testing.T) {
	// While a ModeLock holder is inside, raising Q must not admit anyone.
	c := New(Params{Threads: 4, InitialQuota: 1})
	m, _ := c.Enter(context.Background())
	if m != ModeLock {
		t.Fatal("expected lock mode")
	}
	c.SetQuota(4)

	admitted := make(chan Mode, 1)
	go func() {
		m2, _ := c.Enter(context.Background())
		admitted <- m2
	}()
	select {
	case <-admitted:
		t.Fatal("admission while lock-mode holder inside")
	case <-time.After(20 * time.Millisecond):
	}
	c.Exit(m, Committed, time.Nanosecond)
	select {
	case m2 := <-admitted:
		if m2 != ModeTM {
			t.Errorf("post-lock admission mode = %v, want TM", m2)
		}
		c.Exit(m2, Committed, time.Nanosecond)
	case <-time.After(time.Second):
		t.Fatal("waiter never admitted after lock holder left")
	}
}

func TestEnterContextCancel(t *testing.T) {
	c := New(Params{Threads: 2, InitialQuota: 1})
	m, _ := c.Enter(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.Enter(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Enter never returned")
	}
	c.Exit(m, Committed, time.Nanosecond)
	// Controller must still be usable.
	m2, err := c.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Exit(m2, Committed, time.Nanosecond)
}

func TestDeltaEquation5(t *testing.T) {
	// δ(Q) = abortNs / (successNs · (Q−1)), Eq. 5 of the paper.
	tot := Totals{SuccessNs: 1000, AbortNs: 3000}
	if got := tot.Delta(4); got != 1.0 {
		t.Errorf("Delta(4) = %v, want 1.0", got)
	}
	if got := tot.Delta(2); got != 3.0 {
		t.Errorf("Delta(2) = %v, want 3.0", got)
	}
	if !math.IsNaN(tot.Delta(1)) {
		t.Error("Delta(1) must be NaN (paper's N/A)")
	}
	if !math.IsNaN(Totals{}.Delta(4)) {
		t.Error("Delta with zero success time must be NaN")
	}
}

func TestDeltaQuick(t *testing.T) {
	// Property: δ scales linearly in abort time and inversely in (Q-1).
	prop := func(abortNs, successNs uint32, q uint8) bool {
		Q := int(q)%15 + 2 // 2..16
		tot := Totals{SuccessNs: int64(successNs) + 1, AbortNs: int64(abortNs)}
		d := tot.Delta(Q)
		want := float64(tot.AbortNs) / (float64(tot.SuccessNs) * float64(Q-1))
		return math.Abs(d-want) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// driveWindow pushes one full adjustment window with the given per-attempt
// outcome mix through the controller.
func driveWindow(c *Controller, commitNs, abortNs time.Duration) {
	for i := int64(0); i < c.params.AdjustEvery; i++ {
		m, _ := c.Enter(context.Background())
		if abortNs > 0 && i%2 == 0 {
			c.Exit(m, Aborted, abortNs)
		} else {
			c.Exit(m, Committed, commitNs)
		}
	}
}

func TestAdaptiveHalvesOnHighDelta(t *testing.T) {
	c := New(Params{Threads: 16, InitialQuota: 0, AdjustEvery: 64})
	if c.Quota() != 16 {
		t.Fatalf("adaptive start Q = %d, want 16", c.Quota())
	}
	// Aborts dominate: δ ≫ 1 → Q halves each window.
	driveWindow(c, time.Microsecond, 100*time.Millisecond)
	if got := c.Quota(); got != 8 {
		t.Errorf("after hot window Q = %d, want 8", got)
	}
	driveWindow(c, time.Microsecond, 100*time.Millisecond)
	if got := c.Quota(); got != 4 {
		t.Errorf("Q = %d, want 4", got)
	}
}

func TestAdaptiveDoublesOnLowDelta(t *testing.T) {
	c := New(Params{Threads: 16, InitialQuota: 2, Adaptive: true, AdjustEvery: 64})
	driveWindow(c, 10*time.Millisecond, 0)
	if got := c.Quota(); got != 4 {
		t.Errorf("after cold window Q = %d, want 4", got)
	}
	driveWindow(c, 10*time.Millisecond, 0)
	driveWindow(c, 10*time.Millisecond, 0)
	if got := c.Quota(); got != 16 {
		t.Errorf("Q = %d, want 16 (capped at N)", got)
	}
	driveWindow(c, 10*time.Millisecond, 0)
	if got := c.Quota(); got != 16 {
		t.Errorf("Q exceeded N: %d", got)
	}
}

func TestAdaptiveReachesLockModeAndProbes(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 2, Adaptive: true,
		AdjustEvery: 16, ProbeAtLockEvery: 2})
	// Hot: 2 → 1.
	driveWindow(c, time.Microsecond, 100*time.Millisecond)
	if got := c.Quota(); got != 1 {
		t.Fatalf("Q = %d, want 1", got)
	}
	// Two lock windows later the controller probes back up to 2.
	driveWindow(c, time.Millisecond, 0)
	driveWindow(c, time.Millisecond, 0)
	if got := c.Quota(); got != 2 {
		t.Errorf("Q = %d, want 2 (upward probe)", got)
	}
}

func TestStickyLockModeWithoutProbe(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 2, Adaptive: true,
		AdjustEvery: 16, ProbeAtLockEvery: -1})
	driveWindow(c, time.Microsecond, 100*time.Millisecond)
	if c.Quota() != 1 {
		t.Fatalf("Q = %d, want 1", c.Quota())
	}
	for i := 0; i < 5; i++ {
		driveWindow(c, time.Millisecond, 0)
	}
	if c.Quota() != 1 {
		t.Errorf("probe-disabled controller left lock mode: Q = %d", c.Quota())
	}
}

func TestMidDeltaHoldsQuota(t *testing.T) {
	// δ between LowDelta and HighDelta: hold.
	c := New(Params{Threads: 16, InitialQuota: 4, Adaptive: true,
		AdjustEvery: 2, HighDelta: 1.0, LowDelta: 0.5})
	// one abort of 2.1ms + one commit of 1ms: δ(4) = 2.1/(1*3) = 0.7.
	m, _ := c.Enter(context.Background())
	c.Exit(m, Aborted, 2100*time.Microsecond)
	m, _ = c.Enter(context.Background())
	c.Exit(m, Committed, time.Millisecond)
	if got := c.Quota(); got != 4 {
		t.Errorf("Q = %d, want 4 (hold)", got)
	}
}

func TestSetQuotaClamps(t *testing.T) {
	c := New(Params{Threads: 8, InitialQuota: 4})
	c.SetQuota(100)
	if c.Quota() != 8 {
		t.Errorf("Q = %d, want clamp to 8", c.Quota())
	}
	c.SetQuota(-3)
	if c.Quota() != 1 {
		t.Errorf("Q = %d, want clamp to 1", c.Quota())
	}
}

func TestSettledQuota(t *testing.T) {
	c := New(Params{Threads: 8, InitialQuota: 4})
	if got := c.SettledQuota(); got != 4 {
		t.Errorf("SettledQuota = %d, want 4", got)
	}
	c.SetQuota(2)
	time.Sleep(30 * time.Millisecond)
	// Q=2 has now accumulated more residence than Q=4 had.
	if got := c.SettledQuota(); got != 2 {
		t.Errorf("SettledQuota = %d, want 2", got)
	}
	if c.QuotaMoves() != 1 {
		t.Errorf("QuotaMoves = %d, want 1", c.QuotaMoves())
	}
}

func TestRecordWithoutAdmission(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	c.Record(Committed, time.Millisecond)
	c.Record(Aborted, 2*time.Millisecond)
	tot := c.Totals()
	if tot.Commits != 1 || tot.Aborts != 1 ||
		tot.SuccessNs != int64(time.Millisecond) || tot.AbortNs != int64(2*time.Millisecond) {
		t.Errorf("totals = %+v", tot)
	}
	if c.InFlight() != 0 {
		t.Error("Record changed admission state")
	}
}

func TestExitWithoutEnterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unbalanced Exit did not panic")
		}
	}()
	c := New(Params{Threads: 2, InitialQuota: 2})
	c.Exit(ModeTM, Committed, 0)
}

func TestAccessors(t *testing.T) {
	c := New(Params{Threads: 8, InitialQuota: 0})
	if !c.Adaptive() || c.Threads() != 8 {
		t.Errorf("accessors wrong: adaptive=%v threads=%d", c.Adaptive(), c.Threads())
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
	if ModeLock.String() != "lock" || ModeTM.String() != "tm" {
		t.Error("Mode stringer wrong")
	}
}

// TestSignalTable drives the lock-free Signal() accessor through its life
// cycle: the pre-window sentinel, a published window sample, the Q=1 NaN
// sentinel, and quota refreshes preserving the last sample.
func TestSignalTable(t *testing.T) {
	t.Run("fresh", func(t *testing.T) {
		c := New(Params{Threads: 8, InitialQuota: 4, Adaptive: true, AdjustEvery: 8})
		sig := c.Signal()
		if sig.Quota != 4 {
			t.Errorf("Quota = %d, want 4", sig.Quota)
		}
		if !math.IsNaN(sig.Delta) {
			t.Errorf("pre-window Delta = %v, want NaN sentinel", sig.Delta)
		}
		if sig.AbortRate != 0 || sig.Windows != 0 {
			t.Errorf("fresh sample = %+v, want zero abort rate and windows", sig)
		}
	})

	t.Run("window", func(t *testing.T) {
		c := New(Params{Threads: 8, InitialQuota: 4, Adaptive: true, AdjustEvery: 8})
		// Hot window: half the attempts abort, each abort 100ms vs 1µs
		// commits, so δ at Q=4 is far above HighDelta and the quota halves.
		driveWindow(c, time.Microsecond, 100*time.Millisecond)
		sig := c.Signal()
		if sig.Windows != 1 {
			t.Fatalf("Windows = %d, want 1", sig.Windows)
		}
		if sig.Quota != 2 || c.Quota() != 2 {
			t.Errorf("published Quota = %d (controller %d), want halved to 2", sig.Quota, c.Quota())
		}
		if sig.AbortRate != 0.5 {
			t.Errorf("AbortRate = %v, want 0.5 (4 aborts of 8)", sig.AbortRate)
		}
		// δ = winAbortNs/(winSuccessNs·(Q−1)) at the pre-adjust Q=4.
		want := float64(4*100*time.Millisecond) / (float64(4*time.Microsecond) * 3)
		if math.Abs(sig.Delta-want)/want > 1e-9 {
			t.Errorf("Delta = %v, want %v", sig.Delta, want)
		}
	})

	t.Run("q1-nan-sentinel", func(t *testing.T) {
		c := New(Params{Threads: 4, InitialQuota: 1, Adaptive: true,
			AdjustEvery: 8, ProbeAtLockEvery: -1})
		driveWindow(c, time.Millisecond, 0)
		sig := c.Signal()
		if sig.Windows != 1 || sig.Quota != 1 {
			t.Fatalf("sample = %+v, want one window at Q=1", sig)
		}
		// Eq. 5 divides by (Q−1): at Q=1 δ is N/A, published as NaN. Every
		// comparison against NaN is false, so consumers (the adaptive batch
		// controller's HighDelta vote, the split advisor) read it as "no
		// signal" without a special case.
		if !math.IsNaN(sig.Delta) {
			t.Fatalf("Delta at Q=1 = %v, want NaN sentinel", sig.Delta)
		}
		if sig.Delta > 1.0 {
			t.Error("NaN delta compared true against a threshold")
		}
		if sig.AbortRate != 0 {
			t.Errorf("AbortRate = %v, want 0 (commit-only window)", sig.AbortRate)
		}
	})

	t.Run("setquota-preserves-sample", func(t *testing.T) {
		c := New(Params{Threads: 8, InitialQuota: 4, Adaptive: true, AdjustEvery: 8})
		driveWindow(c, time.Microsecond, 100*time.Millisecond)
		before := c.Signal()
		c.SetQuota(8)
		sig := c.Signal()
		if sig.Quota != 8 {
			t.Errorf("Quota = %d, want refreshed to 8", sig.Quota)
		}
		if sig.Delta != before.Delta || sig.AbortRate != before.AbortRate || sig.Windows != before.Windows {
			t.Errorf("SetQuota rewrote the window sample: %+v -> %+v", before, sig)
		}
	})

	t.Run("concurrent-reads", func(t *testing.T) {
		// The accessor is advertised lock-free on hot paths: hammer it from
		// readers while windows publish (the -race lane proves the claim).
		c := New(Params{Threads: 8, InitialQuota: 4, Adaptive: true, AdjustEvery: 4})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						sig := c.Signal()
						if sig.Quota < 1 || sig.Quota > 8 {
							t.Errorf("torn signal: %+v", sig)
							return
						}
					}
				}
			}()
		}
		for w := 0; w < 50; w++ {
			driveWindow(c, time.Microsecond, time.Microsecond)
		}
		close(stop)
		wg.Wait()
	})
}
