package rac

import (
	"context"
	"testing"
	"time"
)

func BenchmarkEnterExitUncontended(b *testing.B) {
	c := New(Params{Threads: 16, InitialQuota: 16})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := c.Enter(ctx)
		c.Exit(m, Committed, time.Microsecond)
	}
}

func BenchmarkEnterExitLockMode(b *testing.B) {
	c := New(Params{Threads: 16, InitialQuota: 1})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := c.Enter(ctx)
		c.Exit(m, Committed, time.Microsecond)
	}
}

func BenchmarkEnterExitParallel(b *testing.B) {
	c := New(Params{Threads: 64, InitialQuota: 64})
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m, _ := c.Enter(ctx)
			c.Exit(m, Committed, time.Microsecond)
		}
	})
}

func BenchmarkEnterExitParallelThrottled(b *testing.B) {
	// Quota 2 with many goroutines: measures the waiter/broadcast path.
	c := New(Params{Threads: 64, InitialQuota: 2})
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m, _ := c.Enter(ctx)
			c.Exit(m, Committed, time.Microsecond)
		}
	})
}

func BenchmarkRecord(b *testing.B) {
	c := New(Params{Threads: 16, InitialQuota: 16})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Record(Committed, time.Microsecond)
	}
}

func BenchmarkAdaptiveWindow(b *testing.B) {
	// Full adjustment windows: Enter/Exit with periodic δ evaluation.
	c := New(Params{Threads: 16, InitialQuota: 0, AdjustEvery: 64})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, _ := c.Enter(ctx)
		out := Committed
		if i%3 == 0 {
			out = Aborted
		}
		c.Exit(m, out, time.Microsecond)
	}
}
