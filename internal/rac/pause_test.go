package rac

import (
	"context"
	"testing"
	"time"
)

func TestPauseAndDrainWaitsForExits(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	ctx := context.Background()
	m1, _ := c.Enter(ctx)
	m2, _ := c.Enter(ctx)

	drained := make(chan struct{})
	go func() {
		if err := c.PauseAndDrain(ctx); err != nil {
			t.Errorf("PauseAndDrain: %v", err)
		}
		close(drained)
	}()

	select {
	case <-drained:
		t.Fatal("drained while 2 threads inside")
	case <-time.After(20 * time.Millisecond):
	}
	c.Exit(m1, Committed, time.Nanosecond)
	select {
	case <-drained:
		t.Fatal("drained while 1 thread inside")
	case <-time.After(20 * time.Millisecond):
	}
	c.Exit(m2, Committed, time.Nanosecond)
	select {
	case <-drained:
	case <-time.After(time.Second):
		t.Fatal("never drained after all exits")
	}

	// While paused, admissions block.
	admitted := make(chan Mode, 1)
	go func() {
		m, _ := c.Enter(context.Background())
		admitted <- m
	}()
	select {
	case <-admitted:
		t.Fatal("admitted while paused")
	case <-time.After(20 * time.Millisecond):
	}
	c.Resume()
	select {
	case m := <-admitted:
		c.Exit(m, Committed, time.Nanosecond)
	case <-time.After(time.Second):
		t.Fatal("not admitted after Resume")
	}
}

func TestPauseAndDrainImmediateWhenEmpty(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	if err := c.PauseAndDrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Resume()
	m, err := c.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Exit(m, Committed, time.Nanosecond)
}

// TestPausersAreMutuallyExclusive: two concurrent PauseAndDrain calls must
// serialize — both believing they hold the view exclusively is the data race
// the pause semaphore exists to prevent.
func TestPausersAreMutuallyExclusive(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	ctx := context.Background()
	if err := c.PauseAndDrain(ctx); err != nil {
		t.Fatal(err)
	}
	second := make(chan error, 1)
	go func() { second <- c.PauseAndDrain(ctx) }()
	select {
	case <-second:
		t.Fatal("second pauser acquired while first still paused")
	case <-time.After(20 * time.Millisecond):
	}
	c.Resume()
	select {
	case err := <-second:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("second pauser never acquired after Resume")
	}
	c.Resume()
}

// TestPauseAndDrainCancelWhileQueued: a pauser cancelled while waiting for
// another pauser must return without corrupting pause ownership.
func TestPauseAndDrainCancelWhileQueued(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	if err := c.PauseAndDrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.PauseAndDrain(ctx) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued pauser err = %v, want Canceled", err)
	}
	// First pauser still owns the pause: admissions stay blocked.
	admitted := make(chan struct{})
	go func() {
		m, err := c.Enter(context.Background())
		if err == nil {
			c.Exit(m, Committed, time.Nanosecond)
		}
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("admission slipped through while still paused")
	case <-time.After(20 * time.Millisecond):
	}
	c.Resume()
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("admission blocked after Resume")
	}
}

func TestCloseWakesWaitersWithErrClosed(t *testing.T) {
	c := New(Params{Threads: 2, InitialQuota: 1})
	m, err := c.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := c.Enter(context.Background())
		got <- err
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case err := <-got:
		if err != ErrClosed {
			t.Errorf("waiter err = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken by Close")
	}
	// The in-flight holder can still exit cleanly.
	c.Exit(m, Committed, time.Nanosecond)
	if _, err := c.Enter(context.Background()); err != ErrClosed {
		t.Errorf("Enter after Close = %v, want ErrClosed", err)
	}
}

func TestPauseAndDrainContextCancel(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	m, _ := c.Enter(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.PauseAndDrain(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("err = %v, want Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled drain never returned")
	}
	// A cancelled drain rolls the pause back itself; a spurious Resume is
	// harmless, and the controller keeps working.
	c.Resume()
	c.Exit(m, Committed, time.Nanosecond)
	m2, err := c.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Exit(m2, Committed, time.Nanosecond)
}
