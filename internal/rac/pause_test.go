package rac

import (
	"context"
	"testing"
	"time"
)

func TestPauseAndDrainWaitsForExits(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	ctx := context.Background()
	m1, _ := c.Enter(ctx)
	m2, _ := c.Enter(ctx)

	drained := make(chan struct{})
	go func() {
		if err := c.PauseAndDrain(ctx); err != nil {
			t.Errorf("PauseAndDrain: %v", err)
		}
		close(drained)
	}()

	select {
	case <-drained:
		t.Fatal("drained while 2 threads inside")
	case <-time.After(20 * time.Millisecond):
	}
	c.Exit(m1, Committed, time.Nanosecond)
	select {
	case <-drained:
		t.Fatal("drained while 1 thread inside")
	case <-time.After(20 * time.Millisecond):
	}
	c.Exit(m2, Committed, time.Nanosecond)
	select {
	case <-drained:
	case <-time.After(time.Second):
		t.Fatal("never drained after all exits")
	}

	// While paused, admissions block.
	admitted := make(chan Mode, 1)
	go func() {
		m, _ := c.Enter(context.Background())
		admitted <- m
	}()
	select {
	case <-admitted:
		t.Fatal("admitted while paused")
	case <-time.After(20 * time.Millisecond):
	}
	c.Resume()
	select {
	case m := <-admitted:
		c.Exit(m, Committed, time.Nanosecond)
	case <-time.After(time.Second):
		t.Fatal("not admitted after Resume")
	}
}

func TestPauseAndDrainImmediateWhenEmpty(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	if err := c.PauseAndDrain(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.Resume()
	m, err := c.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Exit(m, Committed, time.Nanosecond)
}

func TestPauseAndDrainContextCancel(t *testing.T) {
	c := New(Params{Threads: 4, InitialQuota: 4})
	m, _ := c.Enter(context.Background())
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- c.PauseAndDrain(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("err = %v, want Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled drain never returned")
	}
	// Controller must recover after Resume.
	c.Resume()
	c.Exit(m, Committed, time.Nanosecond)
	m2, err := c.Enter(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c.Exit(m2, Committed, time.Nanosecond)
}
