package eigenbench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"votm/internal/core"
	"votm/internal/progress"
	"votm/internal/simpar"
	"votm/internal/stm"
)

// Mode selects which of the paper's four program versions to run.
type Mode int

const (
	// SingleView: both objects in one RAC-controlled view.
	SingleView Mode = iota
	// MultiView: one RAC-controlled view per object.
	MultiView
	// MultiTM: one view per object, RAC disabled.
	MultiTM
	// PlainTM: one view, RAC disabled (the plain RSTM baseline).
	PlainTM
)

func (m Mode) String() string {
	switch m {
	case SingleView:
		return "single-view"
	case MultiView:
		return "multi-view"
	case MultiTM:
		return "multi-TM"
	default:
		return "TM"
	}
}

// RAC reports whether the mode uses admission control.
func (m Mode) RAC() bool { return m == SingleView || m == MultiView }

// MultipleViews reports whether the mode partitions data into two views.
func (m Mode) MultipleViews() bool { return m == MultiView || m == MultiTM }

// YieldMode controls cooperative yield points inside transaction bodies —
// the simulated-parallelism substitution for under-provisioned hosts
// (package simpar, DESIGN.md §2).
type YieldMode = simpar.Mode

// Yield-point policies (see simpar).
const (
	YieldAuto = simpar.Auto
	YieldOn   = simpar.On
	YieldOff  = simpar.Off
)

// RunConfig selects the engine, version and quota policy of one run.
type RunConfig struct {
	Engine core.EngineKind
	Mode   Mode
	// Quotas are the fixed per-view quotas (single-view modes use
	// Quotas[0] only). 0 selects adaptive RAC. Ignored when RAC is off.
	Quotas [2]int
	// Orecs and SuicideCM forward to the OrecEagerRedo engine config.
	Orecs     int
	SuicideCM bool
	// AdjustEvery and ProbeAtLockEvery tune adaptive RAC (see rac.Params);
	// zero keeps the defaults.
	AdjustEvery      int64
	ProbeAtLockEvery int
	// Yield simulates hardware parallelism on under-provisioned hosts.
	Yield YieldMode
	// StallWindow declares livelock when no transaction commits for this
	// long (default 1s). Deadline caps the whole run (default 60s).
	StallWindow time.Duration
	Deadline    time.Duration
	// OnViews, when non-nil, is called with the created views after setup
	// and before the workers start — the hook for attaching δ samplers or
	// quota recorders to a run.
	OnViews func(views []*core.View)
	// CrossViewEvery, when positive, replaces every Nth scheduled
	// transaction with a batch spanning BOTH views: the thread's view-1 and
	// view-2 access sequences run as one multi-view transaction through the
	// escalation path (core.AtomicAll, ascending-view-ID canonical order).
	// Each participating view accounts the batch as an escalated commit, so
	// δ(Q) keeps charging the serial time cross-view work imposes. Requires
	// the multi-view mode (AtomicAll needs admission control).
	CrossViewEvery int
}

func (c *RunConfig) fill() {
	if c.StallWindow == 0 {
		c.StallWindow = time.Second
	}
	if c.Deadline == 0 {
		c.Deadline = 60 * time.Second
	}
}

// yieldEnabled resolves YieldAuto against the host.
func (c *RunConfig) yieldEnabled(threads int) bool {
	return simpar.Enabled(c.Yield, threads)
}

// ViewStats is one view's table row fragment (paper Tables III, V, VII, IX).
type ViewStats struct {
	Commits    int64   // #tx
	Aborts     int64   // #abort
	SuccessNs  int64   // CPUcycles_successful_tx (ns proxy)
	AbortNs    int64   // CPUcycles_aborted_tx (ns proxy)
	Delta      float64 // δ(Q) per Equation 5; NaN when Q ≤ 1
	Quota      int     // final/settled Q
	QuotaMoves int64   // number of adaptive quota changes
	// Escalations counts transactions this view executed through the
	// exclusive escalation path — retry-budget escalations plus every
	// cross-view batch it participated in (CrossViewEvery).
	Escalations int64
}

// Result of one Eigenbench run.
type Result struct {
	Elapsed  time.Duration
	Livelock bool
	Reason   string // watchdog reason when Livelock
	Views    []ViewStats
}

// TotalCommits sums commits across views.
func (r Result) TotalCommits() int64 {
	var n int64
	for _, v := range r.Views {
		n += v.Commits
	}
	return n
}

// TotalAborts sums aborts across views.
func (r Result) TotalAborts() int64 {
	var n int64
	for _, v := range r.Views {
		n += v.Aborts
	}
	return n
}

// Run executes the benchmark and returns its statistics. A livelocked run
// returns with Livelock=true and the partial statistics collected so far
// (the paper prints "livelock" for those cells).
func Run(cfg RunConfig, p Params) (Result, error) {
	cfg.fill()
	if p.Threads <= 0 {
		return Result{}, errors.New("eigenbench: Threads must be positive")
	}
	for i, vp := range p.Views {
		if vp.sharedAccesses() > 0 && (vp.A1 <= 0 || vp.A2 <= 0) {
			return Result{}, fmt.Errorf("eigenbench: view %d has shared accesses but empty arrays", i+1)
		}
	}
	if cfg.CrossViewEvery > 0 && cfg.Mode != MultiView {
		return Result{}, errors.New("eigenbench: CrossViewEvery requires the multi-view mode")
	}

	rt := core.NewRuntime(core.Config{
		Threads:          p.Threads,
		Engine:           cfg.Engine,
		NoAdmission:      !cfg.Mode.RAC(),
		Orecs:            cfg.Orecs,
		SuicideCM:        cfg.SuicideCM,
		AdjustEvery:      cfg.AdjustEvery,
		ProbeAtLockEvery: cfg.ProbeAtLockEvery,
	})

	// Lay out views and object regions.
	views := make([]*core.View, 0, 2)
	regions := make([]objRegion, 2)
	viewOf := [2]int{0, 0} // object index -> view slice index
	if cfg.Mode.MultipleViews() {
		for i := 0; i < 2; i++ {
			v, err := rt.CreateView(i+1, p.Views[i].words(), cfg.Quotas[i])
			if err != nil {
				return Result{}, err
			}
			views = append(views, v)
			regions[i] = objRegion{hotBase: 0, mildBase: stm.Addr(p.Views[i].A1)}
			viewOf[i] = i
		}
	} else {
		size := p.Views[0].words() + p.Views[1].words()
		v, err := rt.CreateView(1, size, cfg.Quotas[0])
		if err != nil {
			return Result{}, err
		}
		views = append(views, v)
		off := 0
		for i := 0; i < 2; i++ {
			regions[i] = objRegion{
				hotBase:  stm.Addr(off),
				mildBase: stm.Addr(off + p.Views[i].A1),
			}
			off += p.Views[i].words()
			viewOf[i] = 0
		}
	}

	if cfg.OnViews != nil {
		cfg.OnViews(views)
	}

	sampleCommits := func() int64 {
		var n int64
		for _, v := range views {
			n += v.Totals().Commits
		}
		return n
	}
	ctx, wd := progress.Watch(context.Background(), sampleCommits, cfg.StallWindow, cfg.Deadline)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p.Threads; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			runWorker(ctx, rt, p, cfg, views, regions, viewOf, idx)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	livelocked := wd.Stop()

	res := Result{Elapsed: elapsed, Livelock: livelocked, Reason: wd.Reason()}
	for _, v := range views {
		s := v.Snapshot()
		res.Views = append(res.Views, ViewStats{
			Commits:     s.Totals.Commits,
			Aborts:      s.Totals.Aborts,
			SuccessNs:   s.Totals.SuccessNs,
			AbortNs:     s.Totals.AbortNs,
			Delta:       s.Delta,
			Quota:       s.EffectiveQuota,
			QuotaMoves:  s.QuotaMoves,
			Escalations: s.Totals.Escalations,
		})
	}
	return res, nil
}

// runWorker is one of the N benchmark threads (paper Figure 3 main loop).
func runWorker(ctx context.Context, rt *core.Runtime, p Params, cfg RunConfig,
	views []*core.View, regions []objRegion, viewOf [2]int, idx int) {

	rng := rand.New(rand.NewSource(p.Seed + int64(idx)*7919))
	th := rt.RegisterThread()
	defer th.Release() // recycle descriptors into the engines' pools
	yield := cfg.yieldEnabled(p.Threads)

	cold := [2][]uint64{
		make([]uint64, max(p.Views[0].A3, 1)),
		make([]uint64, max(p.Views[1].A3, 1)),
	}
	maxOps := max(p.Views[0].sharedAccesses(), p.Views[1].sharedAccesses())
	ops := make([]op, 0, maxOps)
	var sink uint64

	sched := schedule(rng, p.Views[0].Loops, p.Views[1].Loops)
	for n, obj := range sched {
		if ctx.Err() != nil {
			return
		}
		if cfg.CrossViewEvery > 0 && (n+1)%cfg.CrossViewEvery == 0 {
			// Cross-view batch: both objects' access sequences as one
			// multi-view transaction. views is already in ascending
			// view-ID order (IDs 1, 2) — the canonical AtomicAll order
			// every concurrent acquirer must share.
			xerr := core.AtomicAll(ctx, th, views, false, func(txs []core.Tx) error {
				s := sink
				for o := 0; o < 2; o++ {
					ops = genOps(ops, rng, p.Views[o], regions[o], idx, p.Threads)
					tx := txs[viewOf[o]]
					for k := range ops {
						if ops[k].write {
							tx.Store(ops[k].addr, s)
						} else {
							s += tx.Load(ops[k].addr)
						}
					}
					if yield {
						runtime.Gosched()
					}
				}
				sink = s
				return nil
			})
			if xerr != nil {
				return // cancelled (livelock watchdog or deadline)
			}
			continue
		}
		vp := p.Views[obj]
		view := views[viewOf[obj]]
		region := regions[obj]

		// The access sequence is drawn inside the body, so a retried
		// (aborted) transaction touches fresh random addresses — exactly
		// like Eigenbench's rand_r inside the transaction. Without this,
		// two conflicting transactions replay identical address sets and
		// can starve each other forever.
		body := func(tx core.Tx) error {
			ops = genOps(ops, rng, vp, region, idx, p.Threads)
			s := sink
			for k := range ops {
				o := ops[k]
				if o.write {
					tx.Store(o.addr, s)
				} else {
					s += tx.Load(o.addr)
				}
				if vp.R3i > 0 || vp.W3i > 0 || vp.NOPi > 0 {
					localWork(cold[obj], rng, vp.R3i, vp.W3i, vp.NOPi, &s)
				}
				if yield {
					runtime.Gosched()
				}
			}
			sink = s
			return nil
		}
		if err := view.Atomic(ctx, th, body); err != nil {
			return // cancelled (livelock watchdog or deadline)
		}

		// Activities outside transactions (Figure 3).
		if vp.R3o > 0 || vp.W3o > 0 || vp.NOPo > 0 {
			localWork(cold[obj], rng, vp.R3o, vp.W3o, vp.NOPo, &sink)
		}
	}
}

// Describe summarizes a run config for logs and table captions.
func Describe(cfg RunConfig) string {
	q := "adaptive"
	if cfg.Mode.RAC() && (cfg.Quotas[0] > 0 || cfg.Quotas[1] > 0) {
		q = fmt.Sprintf("Q1=%d Q2=%d", cfg.Quotas[0], cfg.Quotas[1])
	}
	return fmt.Sprintf("eigenbench %s engine=%s %s", cfg.Mode, cfg.Engine, q)
}
