package eigenbench

import (
	"testing"
	"time"

	"votm/internal/core"
	"votm/internal/viewmgr"
)

// managedParams is a small fused hot+cold workload whose region boundary is
// segment-aligned (SegWords 64): object 0 is one hot 64-word segment
// (conflict-heavy, 4× the transaction rate), object 1 two cold segments.
func managedParams() Params {
	return Params{
		Threads: 4,
		Views: [2]ViewParams{
			{Loops: 6000, A1: 32, A2: 32, A3: 64, R1: 8, W1: 4, R2: 2, W2: 2},
			{Loops: 1500, A1: 64, A2: 64, A3: 64, R1: 2, W1: 1, R2: 2, W2: 1},
		},
		Seed: 42,
	}
}

// TestRunManagedConvergesToPartition is the tentpole's end-to-end
// experiment: start from the paper's Observation 2 worst case — hot and
// cold objects fused in one view — and let the view manager discover and
// repair the violation online. Structural acceptance: at least one split
// executed, the two objects end in different views, and the run's
// throughput is within a generous tolerance of the hand-partitioned
// multi-view baseline.
func TestRunManagedConvergesToPartition(t *testing.T) {
	p := managedParams()
	cfg := RunConfig{
		Engine:      core.NOrec,
		Mode:        SingleView, // layout reference only; RunManaged is always fused
		StallWindow: 10 * time.Second,
		Deadline:    60 * time.Second,
	}
	mcfg := viewmgr.Config{
		Sampler: viewmgr.SamplerConfig{SegWords: 64, Rate: 1},
		Planner: viewmgr.PlannerConfig{
			MinSamples:     64,
			MergeAbortRate: -1, // pin executed splits: never merge back
		},
		Interval: 10 * time.Millisecond,
	}

	res, err := RunManaged(cfg, p, mcfg)
	if err != nil {
		t.Fatalf("RunManaged: %v", err)
	}
	if res.Livelock {
		t.Fatalf("managed run livelocked: %s", res.Reason)
	}
	if res.Splits < 1 {
		t.Fatalf("no split executed: manager missed the Observation 2 violation (events: %v)", res.Events)
	}
	if res.FinalViews[0] == res.FinalViews[1] {
		t.Fatalf("objects still share view %d after %d splits", res.FinalViews[0], res.Splits)
	}
	wantTx := int64(p.Threads * (p.Views[0].Loops + p.Views[1].Loops))
	if got := res.TotalCommits(); got < wantTx {
		t.Fatalf("commits = %d, want >= %d (every scheduled transaction must commit)", got, wantTx)
	}
	t.Logf("managed: %d splits, %d merges, %d moved-retries, %v elapsed, final views %v",
		res.Splits, res.Merges, res.Moved, res.Elapsed, res.FinalViews)

	// Throughput tolerance vs the hand-partitioned baseline. Wall-clock
	// comparisons are noisy at this scale, so the bound is deliberately
	// loose: the managed run (which pays for sampling, quiescence and
	// MovedError retries) must stay within 3× of multi-view time.
	base, err := Run(RunConfig{
		Engine:      core.NOrec,
		Mode:        MultiView,
		StallWindow: 10 * time.Second,
		Deadline:    60 * time.Second,
	}, p)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if base.Livelock {
		t.Fatalf("baseline livelocked: %s", base.Reason)
	}
	t.Logf("baseline multi-view: %v elapsed, %d commits", base.Elapsed, base.TotalCommits())
	if res.Elapsed > 3*base.Elapsed {
		t.Errorf("managed run took %v, more than 3x the multi-view baseline %v", res.Elapsed, base.Elapsed)
	}
}

// TestRunManagedNoFalseSplit: a workload whose two objects ARE co-accessed
// (each transaction touches both regions) must never be split — the
// planner's co-access test is what separates Observation 2 from plain
// hot/cold skew.
func TestRunManagedNoFalseSplit(t *testing.T) {
	// Both objects get identical, mutually co-accessed traffic: every
	// transaction of either object also reads the other region via the
	// shared schedule. Easiest faithful encoding at this layer: one object
	// spanning both segments (A1 covers 2 segments), second object idle.
	p := Params{
		Threads: 4,
		Views: [2]ViewParams{
			{Loops: 400, A1: 128, A2: 64, A3: 16, R1: 8, W1: 2, R2: 1, W2: 1},
			{Loops: 0, A1: 64, A2: 0, A3: 1},
		},
		Seed: 7,
	}
	cfg := RunConfig{
		Engine:      core.NOrec,
		StallWindow: 10 * time.Second,
		Deadline:    60 * time.Second,
	}
	mcfg := viewmgr.Config{
		Sampler:  viewmgr.SamplerConfig{SegWords: 64, Rate: 1},
		Planner:  viewmgr.PlannerConfig{MinSamples: 64, MergeAbortRate: -1},
		Interval: 10 * time.Millisecond,
	}
	res, err := RunManaged(cfg, p, mcfg)
	if err != nil {
		t.Fatalf("RunManaged: %v", err)
	}
	if res.Livelock {
		t.Fatalf("livelocked: %s", res.Reason)
	}
	if res.Splits != 0 {
		t.Fatalf("manager split a co-accessed view (%d splits): %v", res.Splits, res.Events)
	}
}
