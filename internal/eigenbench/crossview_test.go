package eigenbench

import (
	"math"
	"testing"
	"time"

	"votm/internal/core"
)

// TestCrossViewRequiresMultiView: the cross-view option rides the multi-view
// escalation path (core.AtomicAll), which needs admission control and two
// views — every other mode must be rejected up front.
func TestCrossViewRequiresMultiView(t *testing.T) {
	for _, mode := range []Mode{SingleView, MultiTM, PlainTM} {
		_, err := Run(RunConfig{
			Engine:         core.NOrec,
			Mode:           mode,
			CrossViewEvery: 4,
		}, tiny(2, 10))
		if err == nil {
			t.Errorf("mode %v: CrossViewEvery accepted, want error", mode)
		}
	}
}

// TestCrossViewCommitsAndEscalations checks the accounting contract: a
// cross-view batch replaces one scheduled transaction but commits once on
// EACH view (AtomicAll records an escalated commit per participant), and the
// per-view escalation counters expose at least one escalation per batch.
func TestCrossViewCommitsAndEscalations(t *testing.T) {
	const threads, loops, every = 4, 28, 8
	res, err := Run(RunConfig{
		Engine:         core.NOrec,
		Mode:           MultiView,
		Quotas:         [2]int{4, 4},
		CrossViewEvery: every,
		StallWindow:    5 * time.Second,
	}, tiny(threads, loops))
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelock {
		t.Fatalf("livelock: %s", res.Reason)
	}
	sched := 2 * loops // per-thread scheduled transactions
	cross := sched / every
	want := int64(threads * (sched - cross + 2*cross))
	if got := res.TotalCommits(); got != want {
		t.Errorf("commits = %d, want %d (%d cross batches/thread double-commit)",
			got, want, cross)
	}
	for i, vs := range res.Views {
		if vs.Escalations < int64(threads*cross) {
			t.Errorf("view %d: escalations = %d, want >= %d (one per cross-view batch)",
				i+1, vs.Escalations, threads*cross)
		}
	}
}

// TestCrossViewDeltaDefined: with a fixed quota above 1 the cross-view run
// must still report a defined δ(Q) on both views — the escalated batches are
// charged into the same Equation 5 inputs as ordinary transactions.
func TestCrossViewDeltaDefined(t *testing.T) {
	res, err := Run(RunConfig{
		Engine:         core.NOrec,
		Mode:           MultiView,
		Quotas:         [2]int{4, 4},
		CrossViewEvery: 6,
		StallWindow:    5 * time.Second,
	}, tiny(4, 60))
	if err != nil {
		t.Fatal(err)
	}
	for i, vs := range res.Views {
		if math.IsNaN(vs.Delta) {
			t.Errorf("view %d: δ(Q) is NaN at Q=4", i+1)
		}
		if vs.Delta < 0 {
			t.Errorf("view %d: δ(Q) = %v < 0", i+1, vs.Delta)
		}
	}
}

// BenchmarkCrossViewDelta is the cross-view δ(Q) cell captured into
// BENCH_server.json by `make bench-server`: the Table II multi-view shape at
// bench scale, once conflict-free across views (off) and once with every 8th
// transaction spanning both views through the AtomicAll escalation path
// (every8). The delta metrics are the paper's Equation 5 read directly off
// each view — the "off" pair is the single-view-free prediction the cross
// cell is compared against.
func BenchmarkCrossViewDelta(b *testing.B) {
	for _, c := range []struct {
		name  string
		every int
	}{
		{"off", 0},
		{"every8", 8},
	} {
		b.Run(c.name, func(b *testing.B) {
			var commits int64
			for i := 0; i < b.N; i++ {
				res, err := Run(RunConfig{
					Engine:         core.NOrec,
					Mode:           MultiView,
					Quotas:         [2]int{4, 4},
					CrossViewEvery: c.every,
					StallWindow:    5 * time.Second,
					Deadline:       60 * time.Second,
				}, tiny(8, 150))
				if err != nil {
					b.Fatal(err)
				}
				if res.Livelock {
					b.Fatalf("livelock: %s", res.Reason)
				}
				commits += res.TotalCommits()
				if i == b.N-1 {
					b.ReportMetric(res.Views[0].Delta, "v1-delta-q")
					b.ReportMetric(res.Views[1].Delta, "v2-delta-q")
					b.ReportMetric(float64(res.Views[0].Escalations+res.Views[1].Escalations),
						"escalations")
				}
			}
			b.ReportMetric(float64(commits)/b.Elapsed().Seconds(), "commits/sec")
		})
	}
}
