package eigenbench

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"votm/internal/core"
	"votm/internal/stm"
)

// tiny returns a fast, low-scale parameter set that keeps the hot/cold
// shape of Table II.
func tiny(threads, loops int) Params {
	return Params{
		Threads: threads,
		Views: [2]ViewParams{
			{Loops: loops, A1: 64, A2: 1024, A3: 256, R1: 20, W1: 5, R2: 4, W2: 4},
			{Loops: loops, A1: 4096, A2: 1024, A3: 256, R1: 4, W1: 4, R2: 4, W2: 4,
				R3i: 2, W3i: 1, NOPi: 8},
		},
		Seed: 42,
	}
}

func TestPaperParamsMatchTableII(t *testing.T) {
	p := PaperParams()
	if p.Threads != 16 {
		t.Errorf("N = %d, want 16", p.Threads)
	}
	v1, v2 := p.Views[0], p.Views[1]
	if v1.Loops != 100_000 || v2.Loops != 100_000 {
		t.Error("loops != 100k")
	}
	if v1.A1 != 256 || v2.A1 != 16*1024 {
		t.Errorf("A1 = %d, %d", v1.A1, v2.A1)
	}
	if v1.A2 != 16*1024 || v1.A3 != 8*1024 {
		t.Error("view 1 A2/A3 wrong")
	}
	if v1.R1 != 80 || v1.W1 != 20 || v1.R2 != 10 || v1.W2 != 10 {
		t.Error("view 1 access counts wrong")
	}
	if v2.R3i != 5 || v2.W3i != 1 || v2.NOPi != 20 {
		t.Error("view 2 local work wrong")
	}
	if v1.R3o != 0 || v1.W3o != 0 || v1.NOPo != 0 {
		t.Error("outside-tx work must be 0 (Table II)")
	}
}

func TestScaledPreservesShape(t *testing.T) {
	p := Scaled(8, 500)
	if p.Threads != 8 || p.Views[0].Loops != 500 || p.Views[1].Loops != 500 {
		t.Error("Scaled did not rescale")
	}
	if p.Views[0].A1 != PaperParams().Views[0].A1 {
		t.Error("Scaled changed the contention shape")
	}
}

func TestModePredicates(t *testing.T) {
	cases := []struct {
		m     Mode
		s     string
		rac   bool
		multi bool
	}{
		{SingleView, "single-view", true, false},
		{MultiView, "multi-view", true, true},
		{MultiTM, "multi-TM", false, true},
		{PlainTM, "TM", false, false},
	}
	for _, c := range cases {
		if c.m.String() != c.s || c.m.RAC() != c.rac || c.m.MultipleViews() != c.multi {
			t.Errorf("mode %v predicates wrong", c.m)
		}
	}
}

func TestScheduleComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := schedule(rng, 10, 20)
	if len(s) != 30 {
		t.Fatalf("len = %d", len(s))
	}
	var zeros, ones int
	for _, v := range s {
		if v == 0 {
			zeros++
		} else {
			ones++
		}
	}
	if zeros != 10 || ones != 20 {
		t.Errorf("composition %d/%d, want 10/20", zeros, ones)
	}
}

func TestGenOpsComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vp := ViewParams{A1: 16, A2: 64, R1: 5, W1: 3, R2: 2, W2: 1}
	region := objRegion{hotBase: 100, mildBase: 200}
	ops := genOps(nil, rng, vp, region, 2, 4)
	if len(ops) != 11 {
		t.Fatalf("ops len = %d, want 11", len(ops))
	}
	var hotR, hotW, mildR, mildW int
	slot := vp.A2 / 4
	lo, hi := region.mildBase+stm2(2*slot), region.mildBase+stm2(3*slot)
	for _, o := range ops {
		hot := o.addr >= region.hotBase && o.addr < region.hotBase+stm2(vp.A1)
		mild := o.addr >= lo && o.addr < hi
		switch {
		case hot && o.write:
			hotW++
		case hot:
			hotR++
		case mild && o.write:
			mildW++
		case mild:
			mildR++
		default:
			t.Fatalf("op outside its region: %+v", o)
		}
	}
	if hotR != 5 || hotW != 3 || mildR != 2 || mildW != 1 {
		t.Errorf("composition R1=%d W1=%d R2=%d W2=%d", hotR, hotW, mildR, mildW)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	if _, err := Run(RunConfig{Engine: core.NOrec}, Params{Threads: 0}); err == nil {
		t.Error("Threads=0 accepted")
	}
	bad := tiny(2, 10)
	bad.Views[0].A1 = 0
	if _, err := Run(RunConfig{Engine: core.NOrec}, bad); err == nil {
		t.Error("empty hot array accepted")
	}
}

func runModes(t *testing.T, engine core.EngineKind, quotas [2]int) {
	t.Helper()
	const threads, loops = 4, 60
	for _, mode := range []Mode{SingleView, MultiView, MultiTM, PlainTM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Run(RunConfig{
				Engine:      engine,
				Mode:        mode,
				Quotas:      quotas,
				StallWindow: 5 * time.Second,
				Deadline:    60 * time.Second,
			}, tiny(threads, loops))
			if err != nil {
				t.Fatal(err)
			}
			if res.Livelock {
				t.Fatalf("unexpected livelock: %s", res.Reason)
			}
			wantViews := 1
			if mode.MultipleViews() {
				wantViews = 2
			}
			if len(res.Views) != wantViews {
				t.Fatalf("views = %d, want %d", len(res.Views), wantViews)
			}
			if got := res.TotalCommits(); got != int64(threads*loops*2) {
				t.Errorf("commits = %d, want %d", got, threads*loops*2)
			}
			if mode.MultipleViews() {
				for i, vs := range res.Views {
					if vs.Commits != int64(threads*loops) {
						t.Errorf("view %d commits = %d, want %d", i+1, vs.Commits, threads*loops)
					}
				}
			}
			if res.Elapsed <= 0 {
				t.Error("non-positive elapsed time")
			}
		})
	}
}

func TestRunAllModesNOrec(t *testing.T) { runModes(t, core.NOrec, [2]int{4, 4}) }

func TestRunAllModesOrecEagerSuicide(t *testing.T) {
	// Suicide CM cannot livelock, so all modes complete even at full quota.
	const threads, loops = 4, 40
	for _, mode := range []Mode{SingleView, MultiView} {
		res, err := Run(RunConfig{
			Engine:      core.OrecEagerRedo,
			Mode:        mode,
			Quotas:      [2]int{4, 4},
			SuicideCM:   true,
			StallWindow: 5 * time.Second,
		}, tiny(threads, loops))
		if err != nil {
			t.Fatal(err)
		}
		if res.Livelock {
			t.Fatalf("%v livelocked under suicide CM: %s", mode, res.Reason)
		}
		if res.TotalCommits() != int64(threads*loops*2) {
			t.Errorf("commits = %d", res.TotalCommits())
		}
	}
}

func TestLockModeQ1NoAborts(t *testing.T) {
	res, err := Run(RunConfig{
		Engine: core.OrecEagerRedo,
		Mode:   SingleView,
		Quotas: [2]int{1, 1},
	}, tiny(4, 40))
	if err != nil {
		t.Fatal(err)
	}
	if res.Views[0].Aborts != 0 {
		t.Errorf("Q=1 aborted %d times", res.Views[0].Aborts)
	}
	if !math.IsNaN(res.Views[0].Delta) {
		t.Errorf("δ at Q=1 = %v, want NaN (paper N/A)", res.Views[0].Delta)
	}
}

func TestHotViewHasMoreContention(t *testing.T) {
	// The structural claim of Table V/IX: view 1 (hot) collects more aborts
	// than view 2 (cold) in the multi-view version.
	res, err := Run(RunConfig{
		Engine: core.NOrec,
		Mode:   MultiView,
		Quotas: [2]int{8, 8},
	}, tiny(8, 150))
	if err != nil {
		t.Fatal(err)
	}
	hot, cold := res.Views[0], res.Views[1]
	if hot.Aborts <= cold.Aborts {
		t.Errorf("hot aborts %d <= cold aborts %d; contention shape lost",
			hot.Aborts, cold.Aborts)
	}
}

func TestAdaptiveRACPreventsLivelock(t *testing.T) {
	// The paper's headline (Table VI): with the aggressive ETL engine the
	// hot workload livelocks at free admission, but adaptive RAC restricts
	// Q and completes. This run must finish.
	if testing.Short() {
		t.Skip("adaptive run skipped in -short mode")
	}
	p := tiny(8, 400)
	res, err := Run(RunConfig{
		Engine:      core.OrecEagerRedo,
		Mode:        MultiView,
		Quotas:      [2]int{0, 0}, // adaptive
		StallWindow: 2 * time.Second,
		Deadline:    90 * time.Second,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelock {
		t.Fatalf("adaptive RAC failed to prevent livelock: %s", res.Reason)
	}
	if res.TotalCommits() != int64(8*400*2) {
		t.Errorf("commits = %d", res.TotalCommits())
	}
	t.Logf("settled quotas: Q1=%d Q2=%d, elapsed %v",
		res.Views[0].Quota, res.Views[1].Quota, res.Elapsed)
}

func TestDescribe(t *testing.T) {
	s := Describe(RunConfig{Engine: core.NOrec, Mode: MultiView, Quotas: [2]int{1, 16}})
	if s == "" {
		t.Error("empty describe")
	}
}

// stm2 converts an int to a heap address in tests.
func stm2(i int) stm.Addr { return stm.Addr(i) }

func TestRunAllModesTL2(t *testing.T) {
	const threads, loops = 4, 50
	for _, mode := range []Mode{SingleView, MultiView, MultiTM, PlainTM} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Run(RunConfig{
				Engine:      core.TL2,
				Mode:        mode,
				Quotas:      [2]int{4, 4},
				StallWindow: 5 * time.Second,
			}, tiny(threads, loops))
			if err != nil {
				t.Fatal(err)
			}
			if res.Livelock {
				t.Fatalf("TL2 livelocked (%s) — impossible by construction", res.Reason)
			}
			if res.TotalCommits() != int64(threads*loops*2) {
				t.Errorf("commits = %d", res.TotalCommits())
			}
		})
	}
}

func TestOnViewsHook(t *testing.T) {
	var got []*core.View
	res, err := Run(RunConfig{
		Engine: core.NOrec,
		Mode:   MultiView,
		Quotas: [2]int{4, 4},
		OnViews: func(views []*core.View) {
			got = append(got, views...)
		},
	}, tiny(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("hook saw %d views, want 2", len(got))
	}
	if res.TotalCommits() != 2*10*2 {
		t.Errorf("commits = %d", res.TotalCommits())
	}
	// The hook's view handles match the run's views.
	if got[0].Totals().Commits+got[1].Totals().Commits != res.TotalCommits() {
		t.Error("hook views are not the run's views")
	}
}

func TestPaperSizeArraysRunable(t *testing.T) {
	// Full Table II array sizes (256/16k hot, 16k mild, 8k cold) with a
	// tiny loop count: exercises the real memory layout end to end.
	if testing.Short() {
		t.Skip("paper-size arrays skipped in -short mode")
	}
	p := PaperParams()
	p.Threads = 4
	p.Views[0].Loops = 5
	p.Views[1].Loops = 5
	res, err := Run(RunConfig{
		Engine:      core.NOrec,
		Mode:        MultiView,
		Quotas:      [2]int{4, 4},
		StallWindow: 10 * time.Second,
	}, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Livelock {
		t.Fatalf("livelock: %s", res.Reason)
	}
	if res.TotalCommits() != 4*5*2 {
		t.Errorf("commits = %d", res.TotalCommits())
	}
}
