// Package eigenbench reimplements the modified Eigenbench microbenchmark of
// the paper's Section III-A (Figure 3, Table II): a two-view transactional
// workload whose contention is controlled per view by orthogonal parameters.
//
// Each view holds a hot array (shared, conflict-prone) and a mild array
// (shared, but each thread only touches its own subarray — it inflates
// transaction size and rollback cost without causing conflicts). Each thread
// also has a private cold array touched inside and outside transactions.
// View 1 is parameterized hot (long transactions, many accesses to a small
// hot array); view 2 is cold.
//
// Four program versions match the paper's evaluation:
//
//	single-view — all shared data in one view (one TM instance + one RAC)
//	multi-view  — two views, each with its own TM instance and RAC
//	multi-TM    — two views, RAC disabled (free admission)
//	TM          — one view, RAC disabled (plain STM baseline)
package eigenbench

import (
	"math/rand"

	"votm/internal/stm"
)

// ViewParams are the per-view Eigenbench knobs (paper Table II naming).
type ViewParams struct {
	Loops int // transactions per thread accessing this view
	A1    int // hot array length (words)
	A2    int // mild array length (words)
	A3    int // cold (thread-private) array length (words)
	R1    int // hot-array reads per transaction
	W1    int // hot-array writes per transaction
	R2    int // mild-array reads per transaction
	W2    int // mild-array writes per transaction
	R3i   int // cold reads between two shared accesses (inside tx)
	W3i   int // cold writes between two shared accesses (inside tx)
	NOPi  int // NOP instructions between two shared accesses (inside tx)
	R3o   int // cold reads outside transactions, per iteration
	W3o   int // cold writes outside transactions, per iteration
	NOPo  int // NOPs outside transactions, per iteration
}

// sharedAccesses is the number of shared-array operations per transaction.
func (p ViewParams) sharedAccesses() int { return p.R1 + p.W1 + p.R2 + p.W2 }

// words is the view's shared footprint.
func (p ViewParams) words() int { return p.A1 + p.A2 }

// Params describe one Eigenbench experiment.
type Params struct {
	Threads int           // N
	Views   [2]ViewParams // view 1 (hot) and view 2 (cold)
	Seed    int64
}

// PaperParams returns the exact Table II configuration: N = 16, 100k
// transactions per thread per view. This is the full paper scale; tests and
// benchmarks use Scaled instead.
func PaperParams() Params {
	return Params{
		Threads: 16,
		Views: [2]ViewParams{
			{Loops: 100_000, A1: 256, A2: 16 * 1024, A3: 8 * 1024,
				R1: 80, W1: 20, R2: 10, W2: 10},
			{Loops: 100_000, A1: 16 * 1024, A2: 16 * 1024, A3: 8 * 1024,
				R1: 10, W1: 10, R2: 10, W2: 10, R3i: 5, W3i: 1, NOPi: 20},
		},
		Seed: 1,
	}
}

// Scaled returns PaperParams with the thread count and per-view loop count
// replaced, preserving every contention-shaping ratio. It lets the table
// shapes reproduce at laptop scale.
func Scaled(threads, loops int) Params {
	p := PaperParams()
	p.Threads = threads
	p.Views[0].Loops = loops
	p.Views[1].Loops = loops
	return p
}

// op is one pre-generated shared-memory access.
type op struct {
	write bool
	addr  stm.Addr
}

// objRegion locates one view's arrays inside a heap (in the single-view
// versions both objects live in the same view at different offsets).
type objRegion struct {
	hotBase  stm.Addr
	mildBase stm.Addr
}

// genOps fills buf with the transaction's shared accesses in random order:
// R1 reads + W1 writes to random hot words, R2 reads + W2 writes to the
// thread's own mild subarray (paper Figure 3).
func genOps(buf []op, rng *rand.Rand, p ViewParams, region objRegion, threadIdx, threads int) []op {
	buf = buf[:0]
	for i := 0; i < p.R1; i++ {
		buf = append(buf, op{write: false, addr: region.hotBase + stm.Addr(rng.Intn(p.A1))})
	}
	for i := 0; i < p.W1; i++ {
		buf = append(buf, op{write: true, addr: region.hotBase + stm.Addr(rng.Intn(p.A1))})
	}
	slot := p.A2 / threads
	if slot < 1 {
		slot = 1
	}
	slotBase := region.mildBase + stm.Addr((threadIdx%threads)*slot)
	for i := 0; i < p.R2; i++ {
		buf = append(buf, op{write: false, addr: slotBase + stm.Addr(rng.Intn(slot))})
	}
	for i := 0; i < p.W2; i++ {
		buf = append(buf, op{write: true, addr: slotBase + stm.Addr(rng.Intn(slot))})
	}
	rng.Shuffle(len(buf), func(i, j int) { buf[i], buf[j] = buf[j], buf[i] })
	return buf
}

// localWork performs r cold reads, w cold writes and n NOPs against the
// thread-private cold array; sink defeats dead-code elimination.
func localWork(cold []uint64, rng *rand.Rand, r, w, n int, sink *uint64) {
	s := *sink
	for i := 0; i < r; i++ {
		s += cold[rng.Intn(len(cold))]
	}
	for i := 0; i < w; i++ {
		cold[rng.Intn(len(cold))] = s
	}
	for i := 0; i < n; i++ {
		s = s*1664525 + 1013904223 // LCG step ≈ one ALU NOP-equivalent
	}
	*sink = s
}

// schedule builds the per-thread random interleave of view-1 and view-2
// transactions (Figure 3: "acquire view 1 or 2 randomly").
func schedule(rng *rand.Rand, loops1, loops2 int) []uint8 {
	s := make([]uint8, 0, loops1+loops2)
	for i := 0; i < loops1; i++ {
		s = append(s, 0)
	}
	for i := 0; i < loops2; i++ {
		s = append(s, 1)
	}
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	return s
}
