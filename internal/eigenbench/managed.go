package eigenbench

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"votm/internal/core"
	"votm/internal/progress"
	"votm/internal/stm"
	"votm/internal/viewmgr"
)

// ManagedResult extends Result with what the view manager did to the run.
type ManagedResult struct {
	Result
	// Splits and Merges count executed repartitions.
	Splits, Merges int
	// Events is the full repartition log.
	Events []viewmgr.Event
	// FinalViews maps each object index to the view ID owning its hot base
	// address when the run ended (1 = still fused).
	FinalViews [2]int
	// Moved counts transactions that hit a MovedError and re-resolved their
	// view — the price of live repartitioning as seen by the workload.
	Moved int64
}

// RunManaged executes the paper's Observation 2 worst case — the hot and the
// cold object fused into ONE RAC-controlled view (the single-view layout) —
// with the online view manager enabled. The manager's affinity sampler sees
// that the two objects never co-occur in a transaction, the planner flags
// the Observation 2 violation, and the executor splits the cold object's
// address range into its own view: the run should converge to the paper's
// hand-partitioned multi-view layout at runtime. Workers retry through
// MovedError by re-resolving their object's owning view with Runtime.Locate
// — the same protocol real applications use.
func RunManaged(cfg RunConfig, p Params, mcfg viewmgr.Config) (ManagedResult, error) {
	cfg.fill()
	if p.Threads <= 0 {
		return ManagedResult{}, errors.New("eigenbench: Threads must be positive")
	}

	rt := core.NewRuntime(core.Config{
		Threads:          p.Threads,
		Engine:           cfg.Engine,
		Orecs:            cfg.Orecs,
		SuicideCM:        cfg.SuicideCM,
		AdjustEvery:      cfg.AdjustEvery,
		ProbeAtLockEvery: cfg.ProbeAtLockEvery,
	})

	// Fused layout: object 0 then object 1 in one view, exactly like
	// Mode == SingleView.
	size := p.Views[0].words() + p.Views[1].words()
	root, err := rt.CreateView(1, size, cfg.Quotas[0])
	if err != nil {
		return ManagedResult{}, err
	}
	regions := [2]objRegion{
		{hotBase: 0, mildBase: stm.Addr(p.Views[0].A1)},
		{hotBase: stm.Addr(p.Views[0].words()), mildBase: stm.Addr(p.Views[0].words() + p.Views[1].A1)},
	}

	mgr := viewmgr.New(rt, mcfg)
	if err := mgr.Manage(context.Background(), root); err != nil {
		return ManagedResult{}, err
	}
	mgr.Start()

	sampleCommits := func() int64 {
		var n int64
		for _, v := range rt.Views() {
			n += v.Totals().Commits
		}
		return n
	}
	ctx, wd := progress.Watch(context.Background(), sampleCommits, cfg.StallWindow, cfg.Deadline)

	var moved int64
	var movedMu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < p.Threads; w++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			n := runManagedWorker(ctx, rt, p, cfg, regions, idx)
			movedMu.Lock()
			moved += n
			movedMu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	livelocked := wd.Stop()
	mgr.Stop()

	res := ManagedResult{
		Result: Result{Elapsed: elapsed, Livelock: livelocked, Reason: wd.Reason()},
		Events: mgr.Events(),
		Moved:  moved,
	}
	for _, e := range res.Events {
		switch e.Kind {
		case viewmgr.EventSplit:
			res.Splits++
		case viewmgr.EventMerge:
			res.Merges++
		}
	}
	for obj := 0; obj < 2; obj++ {
		vid, err := rt.Locate(1, regions[obj].hotBase)
		if err != nil {
			return res, err
		}
		res.FinalViews[obj] = vid
	}
	for _, v := range rt.Views() {
		s := v.Snapshot()
		res.Views = append(res.Views, ViewStats{
			Commits:    s.Totals.Commits,
			Aborts:     s.Totals.Aborts,
			SuccessNs:  s.Totals.SuccessNs,
			AbortNs:    s.Totals.AbortNs,
			Delta:      s.Delta,
			Quota:      s.EffectiveQuota,
			QuotaMoves: s.QuotaMoves,
		})
	}
	return res, nil
}

// runManagedWorker is one benchmark thread against a repartitioning
// runtime: it caches the view owning each object and re-resolves through
// Runtime.Locate whenever a transaction lands on a stale view. Returns the
// number of MovedError retries it absorbed.
func runManagedWorker(ctx context.Context, rt *core.Runtime, p Params, cfg RunConfig,
	regions [2]objRegion, idx int) int64 {

	rng := rand.New(rand.NewSource(p.Seed + int64(idx)*7919))
	th := rt.RegisterThread()
	defer th.Release()
	yield := cfg.yieldEnabled(p.Threads)

	// Per-object view cache, re-resolved on MovedError.
	views := [2]*core.View{}
	viewIDs := [2]int{1, 1}
	for obj := 0; obj < 2; obj++ {
		v, err := rt.View(1)
		if err != nil {
			return 0
		}
		views[obj] = v
	}

	cold := [2][]uint64{
		make([]uint64, max(p.Views[0].A3, 1)),
		make([]uint64, max(p.Views[1].A3, 1)),
	}
	maxOps := max(p.Views[0].sharedAccesses(), p.Views[1].sharedAccesses())
	ops := make([]op, 0, maxOps)
	var sink uint64
	var moved int64

	sched := schedule(rng, p.Views[0].Loops, p.Views[1].Loops)
	for _, obj := range sched {
		if ctx.Err() != nil {
			return moved
		}
		vp := p.Views[obj]
		region := regions[obj]

		body := func(tx core.Tx) error {
			ops = genOps(ops, rng, vp, region, idx, p.Threads)
			s := sink
			for k := range ops {
				o := ops[k]
				if o.write {
					tx.Store(o.addr, s)
				} else {
					s += tx.Load(o.addr)
				}
				if vp.R3i > 0 || vp.W3i > 0 || vp.NOPi > 0 {
					localWork(cold[obj], rng, vp.R3i, vp.W3i, vp.NOPi, &s)
				}
				if yield {
					runtime.Gosched()
				}
			}
			sink = s
			return nil
		}
		for {
			err := views[obj].Atomic(ctx, th, body)
			if err == nil {
				break
			}
			var me *core.MovedError
			if errors.As(err, &me) {
				// Ownership moved mid-run: follow the forwarding chain and
				// retry on the new owner.
				vid, lerr := rt.Locate(viewIDs[obj], me.Addr)
				if lerr != nil {
					return moved
				}
				v, verr := rt.View(vid)
				if verr != nil {
					return moved
				}
				views[obj], viewIDs[obj] = v, vid
				moved++
				continue
			}
			return moved // cancelled (watchdog or deadline)
		}

		if vp.R3o > 0 || vp.W3o > 0 || vp.NOPo > 0 {
			localWork(cold[obj], rng, vp.R3o, vp.W3o, vp.NOPo, &sink)
		}
	}
	return moved
}
