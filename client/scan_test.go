package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"votm/wire"
)

// scanStub is a stub votmd whose SCAN behaviour is scripted per request:
// handler sees the nth scan request (0-based) and produces the response
// status and page. Every scan request is recorded for assertions on the
// cursor-continuation protocol. PING answers OK so Dial succeeds.
type scanStub struct {
	ln      net.Listener
	handler func(n int, req *wire.Request) *wire.Response

	mu   sync.Mutex
	seen []wire.Request // shallow copies of the scan requests observed
}

func newScanStub(t *testing.T, handler func(n int, req *wire.Request) *wire.Response) *scanStub {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &scanStub{ln: ln, handler: handler}
	go s.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return s
}

func (s *scanStub) addr() string { return s.ln.Addr().String() }

func (s *scanStub) requests() []wire.Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wire.Request(nil), s.seen...)
}

func (s *scanStub) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(nc)
	}
}

func (s *scanStub) serve(nc net.Conn) {
	defer nc.Close()
	for {
		req, err := wire.ReadRequest(nc)
		if err != nil {
			return
		}
		var resp *wire.Response
		if req.Op == wire.OpScan {
			s.mu.Lock()
			n := len(s.seen)
			s.seen = append(s.seen, *req)
			s.mu.Unlock()
			resp = s.handler(n, req)
		} else {
			resp = &wire.Response{Op: req.Op, Status: wire.StatusOK}
		}
		resp.Op, resp.ID = req.Op, req.ID
		if err := wire.WriteResponse(nc, resp); err != nil {
			return
		}
	}
}

// page builds an OK scan response holding the given keys (values derived
// from the key), continuing at cursor when more is set.
func page(keys []uint64, more bool, cursor uint64) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK, More: more, Cursor: cursor}
	for _, k := range keys {
		resp.Entries = append(resp.Entries, wire.ScanEntry{Key: k, Value: []byte{byte(k)}})
	}
	return resp
}

// TestScanPagination drives a three-page scan and asserts both sides of the
// continuation contract: the client concatenates pages in order, sends no
// cursor on the first request, and echoes the server's cursor verbatim on
// every follow-up.
func TestScanPagination(t *testing.T) {
	s := newScanStub(t, func(n int, req *wire.Request) *wire.Response {
		switch n {
		case 0:
			return page([]uint64{1, 2, 3}, true, 5)
		case 1:
			return page([]uint64{5, 6, 7}, true, 9)
		default:
			return page([]uint64{9}, false, 0)
		}
	})
	c, err := Dial(s.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx := context.Background()
	sc := c.Scan(1, 100, ScanOptions{PageSize: 3})
	var got []uint64
	for sc.Next(ctx) {
		e := sc.Entry()
		if len(e.Value) != 1 || e.Value[0] != byte(e.Key) {
			t.Fatalf("entry %d carries value %v", e.Key, e.Value)
		}
		got = append(got, e.Key)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	want := []uint64{1, 2, 3, 5, 6, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("scanned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scanned %v, want %v", got, want)
		}
	}

	reqs := s.requests()
	if len(reqs) != 3 {
		t.Fatalf("server saw %d scan requests, want 3", len(reqs))
	}
	if reqs[0].HasCursor {
		t.Fatalf("first page carried a cursor: %+v", reqs[0])
	}
	for i, wantCursor := range []uint64{5, 9} {
		r := reqs[i+1]
		if !r.HasCursor || r.Cursor != wantCursor {
			t.Fatalf("page %d: HasCursor=%v Cursor=%d, want cursor %d", i+1, r.HasCursor, r.Cursor, wantCursor)
		}
		if r.Key != 1 || r.End != 100 || r.Limit != 3 {
			t.Fatalf("page %d: bounds drifted: %+v", i+1, r)
		}
	}
}

// TestScanBusyMidScan is the shard-split story: the server BUSYs between
// two pages (a repartition moved sub-shards mid-scan) and the client's
// jittered retry layer must resume the SAME page — same bounds, same
// cursor — transparently.
func TestScanBusyMidScan(t *testing.T) {
	s := newScanStub(t, func(n int, req *wire.Request) *wire.Response {
		switch n {
		case 0:
			return page([]uint64{10, 11}, true, 20)
		case 1, 2:
			return &wire.Response{Status: wire.StatusBusy}
		default:
			return page([]uint64{20, 21}, false, 0)
		}
	})
	c, err := Dial(s.addr(), Options{PoolSize: 1, BusyRetries: 5, BusyBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	sc := c.Scan(0, 1000, ScanOptions{PageSize: 2})
	var got []uint64
	for sc.Next(context.Background()) {
		got = append(got, sc.Entry().Key)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(got) != 4 || got[0] != 10 || got[3] != 21 {
		t.Fatalf("scanned %v, want [10 11 20 21]", got)
	}

	reqs := s.requests()
	if len(reqs) != 4 {
		t.Fatalf("server saw %d scan requests, want 4 (1 + 2 busy + 1)", len(reqs))
	}
	for i := 1; i < 4; i++ {
		if !reqs[i].HasCursor || reqs[i].Cursor != 20 {
			t.Fatalf("retry %d lost the cursor: %+v", i, reqs[i])
		}
	}
}

// TestScanBusyExhausted: a scan that keeps getting BUSY surfaces ErrBusy
// through Err after the retry budget, not a silent short result.
func TestScanBusyExhausted(t *testing.T) {
	s := newScanStub(t, func(n int, req *wire.Request) *wire.Response {
		if n == 0 {
			return page([]uint64{1}, true, 2)
		}
		return &wire.Response{Status: wire.StatusBusy}
	})
	c, err := Dial(s.addr(), Options{PoolSize: 1, BusyRetries: 2, BusyBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	sc := c.Scan(0, 10, ScanOptions{})
	var got int
	for sc.Next(context.Background()) {
		got++
	}
	if !errors.Is(sc.Err(), ErrBusy) {
		t.Fatalf("Err = %v, want ErrBusy", sc.Err())
	}
	if got != 1 {
		t.Fatalf("yielded %d entries before failing, want the 1 delivered", got)
	}
	if sc.Next(context.Background()) {
		t.Fatal("Next returned true after a terminal error")
	}
}

// TestScanTypedError: a server-side rejection (BAD_REQUEST) surfaces as the
// wire-typed error.
func TestScanTypedError(t *testing.T) {
	s := newScanStub(t, func(n int, req *wire.Request) *wire.Response {
		resp := &wire.Response{Status: wire.StatusBadRequest}
		resp.SetDetail("scan range is empty or reversed")
		return resp
	})
	c, err := Dial(s.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	sc := c.Scan(10, 5, ScanOptions{})
	if sc.Next(context.Background()) {
		t.Fatal("Next returned true for a rejected scan")
	}
	if !errors.Is(sc.Err(), ErrBadRequest) {
		t.Fatalf("Err = %v, want ErrBadRequest", sc.Err())
	}
}

// TestScanEmptyAndClamp: an empty final page ends the scan cleanly, and
// ScanOptions.PageSize is clamped into [1, wire.MaxScanKeys].
func TestScanEmptyAndClamp(t *testing.T) {
	s := newScanStub(t, func(n int, req *wire.Request) *wire.Response {
		return page(nil, false, 0)
	})
	c, err := Dial(s.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	for _, tc := range []struct {
		pageSize  int
		wantLimit uint32
	}{
		{0, wire.MaxScanKeys},
		{-3, wire.MaxScanKeys},
		{wire.MaxScanKeys + 1, wire.MaxScanKeys},
		{17, 17},
	} {
		sc := c.Scan(0, 100, ScanOptions{PageSize: tc.pageSize})
		if sc.Next(context.Background()) {
			t.Fatalf("PageSize %d: Next true on empty range", tc.pageSize)
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("PageSize %d: %v", tc.pageSize, err)
		}
		reqs := s.requests()
		if got := reqs[len(reqs)-1].Limit; got != tc.wantLimit {
			t.Fatalf("PageSize %d sent Limit %d, want %d", tc.pageSize, got, tc.wantLimit)
		}
	}
}
