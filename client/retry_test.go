package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"votm/wire"
)

// busyServer is a stub votmd that answers PING with OK and answers GET with
// BUSY the first busyN times, then OK with the configured value. It speaks
// the real wire framing so the client under test is exercised end to end.
type busyServer struct {
	ln    net.Listener
	busyN int64 // remaining BUSYs; <0 means "busy forever"
	left  atomic.Int64
	gets  atomic.Int64 // total GETs observed
	value []byte
}

func newBusyServer(t *testing.T, busyN int64, value []byte) *busyServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &busyServer{ln: ln, busyN: busyN, value: value}
	s.left.Store(busyN)
	go s.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return s
}

func (s *busyServer) addr() string { return s.ln.Addr().String() }

func (s *busyServer) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(nc)
	}
}

func (s *busyServer) serve(nc net.Conn) {
	defer nc.Close()
	for {
		req, err := wire.ReadRequest(nc)
		if err != nil {
			return
		}
		resp := &wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOK}
		if req.Op == wire.OpGet {
			s.gets.Add(1)
			if s.busyN < 0 || s.left.Add(-1) >= 0 {
				resp.Status = wire.StatusBusy
			} else {
				resp.Value = s.value
			}
		}
		if err := wire.WriteResponse(nc, resp); err != nil {
			return
		}
	}
}

// TestBusyRetrySucceeds: a server that BUSYs twice then accepts must be
// transparent to a client with BusyRetries ≥ 2.
func TestBusyRetrySucceeds(t *testing.T) {
	s := newBusyServer(t, 2, []byte("after-the-storm"))
	c, err := Dial(s.addr(), Options{
		PoolSize:    1,
		BusyRetries: 3,
		BusyBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	got, err := c.Get(context.Background(), 42)
	if err != nil {
		t.Fatalf("Get with retries: %v", err)
	}
	if string(got) != "after-the-storm" {
		t.Fatalf("Get = %q, want %q", got, "after-the-storm")
	}
	if n := s.gets.Load(); n != 3 {
		t.Fatalf("server saw %d GETs, want 3 (2 busy + 1 ok)", n)
	}
}

// TestBusyRetryDisabledByDefault: with the zero Options the first BUSY
// surfaces immediately as ErrBusy.
func TestBusyRetryDisabledByDefault(t *testing.T) {
	s := newBusyServer(t, 1, []byte("v"))
	c, err := Dial(s.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	_, err = c.Get(context.Background(), 7)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Get = %v, want ErrBusy", err)
	}
	if n := s.gets.Load(); n != 1 {
		t.Fatalf("server saw %d GETs, want exactly 1 (no retry)", n)
	}
}

// TestBusyRetryBounded: against an always-busy server the client gives up
// after exactly 1 + BusyRetries attempts and still reports ErrBusy.
func TestBusyRetryBounded(t *testing.T) {
	s := newBusyServer(t, -1, nil)
	c, err := Dial(s.addr(), Options{
		PoolSize:    1,
		BusyRetries: 4,
		BusyBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	_, err = c.Get(context.Background(), 7)
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Get = %v, want ErrBusy after exhausting retries", err)
	}
	if n := s.gets.Load(); n != 5 {
		t.Fatalf("server saw %d GETs, want 5 (1 + 4 retries)", n)
	}
}

// TestBusyRetryContextCancel: a context cancelled during the backoff wait
// aborts the retry loop with the context's error, not ErrBusy.
func TestBusyRetryContextCancel(t *testing.T) {
	s := newBusyServer(t, -1, nil)
	c, err := Dial(s.addr(), Options{
		PoolSize:    1,
		BusyRetries: 100,
		BusyBackoff: 250 * time.Millisecond, // long enough to cancel into
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Get(ctx, 7)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, backoff wait ignored ctx", elapsed)
	}
}
