package client

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"votm/wire"
)

// splitRaceServer is a stub votmd that answers the first `busy` ATOMIC requests
// with BUSY — the response a real server gives when a concurrent repartition
// moves a batch's keys between routing and execution (the split race), or
// when another worker became the batch's coordinator mid-flight. Every later
// request succeeds. BUSY promises the request was not executed, so a client
// configured with BusyRetries must absorb the race transparently.
type splitRaceServer struct {
	ln     net.Listener
	busy   int32
	served atomic.Int32 // total ATOMIC requests seen
}

func newSplitRaceServer(t *testing.T, busy int) *splitRaceServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &splitRaceServer{ln: ln, busy: int32(busy)}
	go s.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return s
}

func (s *splitRaceServer) addr() string { return s.ln.Addr().String() }

func (s *splitRaceServer) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(nc)
	}
}

func (s *splitRaceServer) serve(nc net.Conn) {
	defer nc.Close()
	for {
		req, err := wire.ReadRequest(nc)
		if err != nil {
			return
		}
		resp := &wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOK}
		if req.Op == wire.OpAtomic {
			if n := s.served.Add(1); n <= atomic.LoadInt32(&s.busy) {
				resp.Status = wire.StatusBusy
				resp.Value = []byte("server: batch keys moved by a concurrent repartition")
			} else {
				resp.Subs = make([]wire.SubResult, len(req.Subs))
			}
		}
		if err := wire.WriteResponse(nc, resp); err != nil {
			return
		}
	}
}

// TestAtomicRetriesSplitRace: a multi-shard ATOMIC that loses the routing
// race against a live split is answered BUSY; with BusyRetries set the client
// must retry until the new routing settles and return the committed results,
// with the caller never seeing the race.
func TestAtomicRetriesSplitRace(t *testing.T) {
	const races = 3
	s := newSplitRaceServer(t, races)
	c, err := Dial(s.addr(), Options{
		PoolSize:    1,
		BusyRetries: races + 1,
		BusyBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	// Keys chosen to hash to different shards on a real server; the stub only
	// checks the op, but the batch shape mirrors the cross-shard case.
	subs, err := c.Atomic(context.Background(), []wire.Sub{
		{Kind: wire.SubPut, Key: 1, Value: []byte("a")},
		{Kind: wire.SubPut, Key: 2, Value: []byte("b")},
	})
	if err != nil {
		t.Fatalf("Atomic after %d BUSY races: %v", races, err)
	}
	if len(subs) != 2 {
		t.Fatalf("Atomic results = %d subs, want 2", len(subs))
	}
	if got := s.served.Load(); got != races+1 {
		t.Errorf("server saw %d ATOMIC attempts, want %d", got, races+1)
	}
}

// TestAtomicSplitRaceSurfacesBusy: without BusyRetries the split race is the
// caller's to handle — the client must surface ErrBusy immediately rather
// than retrying behind the caller's back.
func TestAtomicSplitRaceSurfacesBusy(t *testing.T) {
	s := newSplitRaceServer(t, 1)
	c, err := Dial(s.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	_, err = c.Atomic(context.Background(), []wire.Sub{
		{Kind: wire.SubPut, Key: 1, Value: []byte("a")},
	})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("Atomic with retries disabled: %v, want ErrBusy", err)
	}
	if got := s.served.Load(); got != 1 {
		t.Errorf("server saw %d ATOMIC attempts, want 1 (no client-side retry)", got)
	}
}
