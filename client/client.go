// Package client is the Go client for votmd, the VOTM key-value server
// (internal/server, protocol in docs/PROTOCOL.md). A Client multiplexes
// requests over a small pool of TCP connections: every request carries an
// ID, in-flight requests pipeline on the same connection, and responses are
// matched back by ID — so one Client is safe (and efficient) to share
// across many goroutines.
//
// Protocol failures surface as the typed errors of package wire
// (wire.ErrNotFound, wire.ErrBusy, wire.ErrCASMismatch, ...), re-exported
// here; match them with errors.Is. Transport failures surface as ordinary
// network errors, and the broken connection is discarded and redialed on
// the next use.
package client

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"votm/wire"
)

// Typed protocol errors, re-exported from package wire for convenience.
var (
	ErrNotFound    = wire.ErrNotFound
	ErrBusy        = wire.ErrBusy
	ErrCASMismatch = wire.ErrCASMismatch
	ErrCrossShard  = wire.ErrCrossShard
	ErrBadRequest  = wire.ErrBadRequest
	ErrTooLarge    = wire.ErrTooLarge
	ErrTxFault     = wire.ErrTxFault
	ErrShutdown    = wire.ErrShutdown
)

// ErrClosed is returned by every method after Close.
var ErrClosed = errors.New("client: closed")

// Options tunes a Client. Zero values select the documented defaults.
type Options struct {
	// PoolSize is the number of pooled connections. Default 2.
	PoolSize int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout is the per-request default applied when the caller's
	// context carries no deadline. Default 10s.
	RequestTimeout time.Duration

	// BusyRetries enables opt-in retry of BUSY responses: when the server
	// answers with wire.ErrBusy (its bounded shard queue is full, or a
	// repartition moved the key mid-flight), the request is retried up to
	// this many additional times with jittered exponential backoff. 0 (the
	// default) disables retry and surfaces ErrBusy immediately. Only BUSY
	// is retried — it is the one response that promises the request was
	// not executed.
	BusyRetries int
	// BusyBackoff is the base delay before the first BUSY retry; each
	// subsequent retry doubles it, and every wait is jittered to 50–150%
	// of nominal. Waits are context-aware. Default 2ms.
	BusyBackoff time.Duration

	// MapRetries bounds how many times a Cluster client refetches the
	// shard map and retries after a WRONG_SHARD redirect or a node
	// transport failure. Default 4. Ignored by a plain Client.
	MapRetries int
}

func (o Options) withDefaults() Options {
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.BusyBackoff <= 0 {
		o.BusyBackoff = 2 * time.Millisecond
	}
	if o.MapRetries <= 0 {
		o.MapRetries = 4
	}
	return o
}

// Client is a pooled votmd client. Safe for concurrent use.
type Client struct {
	addr string
	opts Options

	mu     sync.Mutex
	conns  []*poolConn // slot i lazily dialed; broken conns are replaced
	closed bool

	next atomic.Uint32 // round-robin slot cursor
	ids  atomic.Uint32 // request ID source, shared across conns
}

// Dial creates a Client for the server at addr and validates connectivity
// by dialing (and pinging) the first pooled connection.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	c.conns = make([]*poolConn, c.opts.PoolSize)
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.DialTimeout)
	defer cancel()
	if err := c.Ping(ctx); err != nil {
		return nil, err
	}
	return c, nil
}

// Close closes every pooled connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, pc := range c.conns {
		if pc != nil {
			pc.close(ErrClosed)
		}
	}
	return nil
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpPing})
	return err
}

// Get returns the value stored under key (ErrNotFound when absent).
func (c *Client) Get(ctx context.Context, key uint64) ([]byte, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Put sets key to val, reporting whether the key was created (vs updated).
func (c *Client) Put(ctx context.Context, key uint64, val []byte) (created bool, err error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpPut, Key: key, Value: val})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes key (ErrNotFound when absent).
func (c *Client) Delete(ctx context.Context, key uint64) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpDelete, Key: key})
	return err
}

// CAS replaces key's value with newVal iff its current value equals expect.
// On ErrCASMismatch the returned error's Detail carries the current value:
//
//	var werr *wire.Error
//	if errors.As(err, &werr) && werr.Status == wire.StatusCASMismatch {
//	    current := werr.Detail
//	}
func (c *Client) CAS(ctx context.Context, key uint64, expect, newVal []byte) error {
	_, err := c.do(ctx, &wire.Request{Op: wire.OpCAS, Key: key, OldValue: expect, Value: newVal})
	return err
}

// Atomic executes subs as one transaction, regardless of which shards the
// keys hash to. Servers speaking protocol version 3 or later run a
// multi-shard batch as a single multi-view transaction (two-phase commit
// across the participating shard WALs when durability is on); older servers
// reject such batches with ErrCrossShard. The whole batch commits or
// none of it does.
func (c *Client) Atomic(ctx context.Context, subs []wire.Sub) ([]wire.SubResult, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpAtomic, Subs: subs})
	if err != nil {
		return nil, err
	}
	return resp.Subs, nil
}

// Add atomically adds delta (64-bit wrapping) to the counter at key,
// creating it at delta when absent, and returns the new value. It is an
// ATOMIC batch of one SubAdd; the stored value is the 8-byte little-endian
// counter, so Get decodes with binary.LittleEndian.Uint64.
func (c *Client) Add(ctx context.Context, key, delta uint64) (uint64, error) {
	subs, err := c.Atomic(ctx, []wire.Sub{{Kind: wire.SubAdd, Key: key, Delta: delta}})
	if err != nil {
		return 0, err
	}
	if len(subs) != 1 {
		return 0, fmt.Errorf("client: ADD returned %d results", len(subs))
	}
	return subs[0].Sum, nil
}

// Counter decodes an 8-byte little-endian counter value as written by Add.
func Counter(val []byte) (uint64, error) {
	if len(val) != 8 {
		return 0, fmt.Errorf("client: counter value has %d bytes, want 8", len(val))
	}
	return binary.LittleEndian.Uint64(val), nil
}

// Stats fetches one shard's statistics, or every shard's with shard ==
// wire.AllShards.
func (c *Client) Stats(ctx context.Context, shard uint32) ([]wire.ShardStats, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpStats, Shard: shard})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// do sends req, retrying BUSY responses when Options.BusyRetries is set.
// Each attempt gets its own request ID and per-attempt timeout.
func (c *Client) do(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	resp, err := c.doOnce(ctx, req)
	if c.opts.BusyRetries <= 0 {
		return resp, err
	}
	backoff := c.opts.BusyBackoff
	for attempt := 0; attempt < c.opts.BusyRetries && errors.Is(err, ErrBusy); attempt++ {
		// Jitter to 50–150% of nominal so synchronized clients thundering
		// against one busy shard spread out.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)+1))
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		resp, err = c.doOnce(ctx, req)
		backoff *= 2
	}
	return resp, err
}

// doOnce sends req on a pooled connection and waits for its response or ctx.
func (c *Client) doOnce(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.RequestTimeout)
		defer cancel()
	}
	req.ID = c.ids.Add(1)

	pc, err := c.conn(ctx)
	if err != nil {
		return nil, err
	}
	ch, err := pc.enqueue(ctx, req)
	if err != nil {
		c.discard(pc)
		return nil, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, pc.failure()
		}
		if err := resp.Err(); err != nil {
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		pc.forget(req.ID)
		return nil, ctx.Err()
	}
}

// conn returns a live pooled connection, dialing lazily round-robin.
func (c *Client) conn(ctx context.Context) (*poolConn, error) {
	slot := int(c.next.Add(1)) % c.opts.PoolSize
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	if pc := c.conns[slot]; pc != nil && !pc.broken() {
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()

	d := net.Dialer{Timeout: c.opts.DialTimeout}
	nc, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	pc := newPoolConn(nc)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		pc.close(ErrClosed)
		return nil, ErrClosed
	}
	if old := c.conns[slot]; old != nil && !old.broken() {
		// Another goroutine redialed this slot first; use theirs.
		pc.close(errors.New("client: duplicate dial"))
		return old, nil
	} else if old != nil {
		old.close(errors.New("client: connection replaced"))
	}
	c.conns[slot] = pc
	return pc, nil
}

// discard drops a broken connection from its pool slot.
func (c *Client) discard(pc *poolConn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cur := range c.conns {
		if cur == pc {
			c.conns[i] = nil
		}
	}
}

// poolConn is one pooled TCP connection with a demultiplexing reader:
// writers interleave frames under wmu, the reader routes responses to the
// waiting request by ID.
type poolConn struct {
	nc net.Conn
	br *bufio.Reader // owned by readLoop

	wmu  sync.Mutex // serializes frame writes
	wbuf []byte     // retained encode scratch, guarded by wmu

	mu      sync.Mutex
	waiting map[uint32]chan *wire.Response
	err     error // set once on transport failure; conn is then broken
}

func newPoolConn(nc net.Conn) *poolConn {
	pc := &poolConn{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 16<<10),
		waiting: make(map[uint32]chan *wire.Response),
	}
	go pc.readLoop()
	return pc
}

func (pc *poolConn) broken() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.err != nil
}

func (pc *poolConn) failure() error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err == nil {
		return errors.New("client: connection failed")
	}
	return pc.err
}

// enqueue registers the request's response channel and writes the frame.
func (pc *poolConn) enqueue(ctx context.Context, req *wire.Request) (chan *wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return nil, err
	}
	pc.waiting[req.ID] = ch
	pc.mu.Unlock()

	// Encode into the connection's retained scratch under wmu: no
	// per-request frame allocation, and the encode/write pair stays atomic
	// with respect to other writers.
	pc.wmu.Lock()
	frame, err := wire.AppendRequest(pc.wbuf[:0], req)
	if err != nil {
		pc.wmu.Unlock()
		pc.forget(req.ID)
		return nil, err
	}
	pc.wbuf = frame
	if deadline, ok := ctx.Deadline(); ok {
		_ = pc.nc.SetWriteDeadline(deadline)
	}
	_, werr := pc.nc.Write(frame)
	pc.wmu.Unlock()
	if werr != nil {
		pc.forget(req.ID)
		pc.close(werr)
		return nil, werr
	}
	return ch, nil
}

// forget abandons a request (context cancelled); a late response for its ID
// is discarded by the read loop.
func (pc *poolConn) forget(id uint32) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	delete(pc.waiting, id)
}

// close marks the connection broken and fails every waiter.
func (pc *poolConn) close(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
	}
	waiting := pc.waiting
	pc.waiting = make(map[uint32]chan *wire.Response)
	pc.mu.Unlock()
	_ = pc.nc.Close()
	for _, ch := range waiting {
		close(ch) // receivers read the failure via failure()
	}
}

func (pc *poolConn) readLoop() {
	for {
		resp, err := wire.ReadResponse(pc.br)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			pc.close(err)
			return
		}
		if resp.Op == wire.OpError {
			// The server declared our stream unframed (reserved OpError/ID-0
			// frame, docs/PROTOCOL.md) and is hanging up: the connection
			// cannot continue. Fail every in-flight request with the server's
			// typed error rather than waiting for the EOF.
			err := resp.Err()
			if err == nil {
				err = wire.ErrBadRequest
			}
			pc.close(fmt.Errorf("client: server aborted connection: %w", err))
			return
		}
		pc.mu.Lock()
		ch, ok := pc.waiting[resp.ID]
		if ok {
			delete(pc.waiting, resp.ID)
		}
		pc.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}
