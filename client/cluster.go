package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"votm/internal/cluster"
	"votm/wire"
)

// ClusterError is a routing failure against a votmd cluster: the wrapped
// error (match with errors.Is — e.g. wire.ErrWrongShard when redirect
// retries ran out) plus the newest shard-map epoch the cluster reported,
// so callers can tell a stale-map loop from a dead shard.
type ClusterError struct {
	// Epoch is the highest map epoch observed while the request failed
	// (from WRONG_SHARD detail bytes or a refetched map); 0 if unknown.
	Epoch uint64
	Err   error
}

func (e *ClusterError) Error() string {
	return fmt.Sprintf("client: cluster routing failed at epoch %d: %v", e.Epoch, e.Err)
}

func (e *ClusterError) Unwrap() error { return e.Err }

// errStaleMap is wrapped into a ClusterError when redirect retries run out
// without ever reaching a node that leads the shard.
var errStaleMap = errors.New("client: shard map still stale after refetch")

// Cluster is a routing client for a votmd cluster. It learns the
// epoch-versioned shard map from a seed node (any cluster member serves
// it), opens one pooled Client per node, and routes each request to the
// leader of its key's shard. A WRONG_SHARD redirect (the map moved under
// us — e.g. a live handoff) triggers a map refetch and a bounded retry,
// reusing the same jittered backoff the BUSY retry path uses; the caller
// never sees a redirect unless retries are exhausted.
//
// Safe for concurrent use.
type Cluster struct {
	seed string
	opts Options

	mu      sync.Mutex
	m       wire.ShardMap
	clients map[string]*Client // keyed by advertised node address
	closed  bool

	refreshMu sync.Mutex // serializes map refetches (single-flight)
}

// DialCluster fetches the shard map from seedAddr (any cluster node, or a
// standalone `votmd -cluster-seed` process) and returns a routing client.
// Options apply to every per-node connection pool; Options.MapRetries
// bounds WRONG_SHARD redirect retries.
func DialCluster(seedAddr string, opts Options) (*Cluster, error) {
	cl := &Cluster{
		seed:    seedAddr,
		opts:    opts.withDefaults(),
		clients: make(map[string]*Client),
	}
	ctx, cancel := context.WithTimeout(context.Background(), cl.opts.DialTimeout)
	defer cancel()
	m, err := cl.fetchMap(ctx, 0)
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("client: shard map from seed %s: %w", seedAddr, err)
	}
	cl.setMap(m)
	return cl, nil
}

// Close closes every per-node connection pool.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil
	}
	cl.closed = true
	for _, c := range cl.clients {
		_ = c.Close()
	}
	return nil
}

// Epoch returns the epoch of the client's current shard map.
func (cl *Cluster) Epoch() uint64 {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.m.Epoch
}

// Map returns a shallow copy of the client's current shard map.
func (cl *Cluster) Map() wire.ShardMap {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.m
}

// Get returns the value stored under key (ErrNotFound when absent).
func (cl *Cluster) Get(ctx context.Context, key uint64) ([]byte, error) {
	resp, err := cl.doKey(ctx, key, &wire.Request{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Put sets key to val, reporting whether the key was created (vs updated).
func (cl *Cluster) Put(ctx context.Context, key uint64, val []byte) (created bool, err error) {
	resp, err := cl.doKey(ctx, key, &wire.Request{Op: wire.OpPut, Key: key, Value: val})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes key (ErrNotFound when absent).
func (cl *Cluster) Delete(ctx context.Context, key uint64) error {
	_, err := cl.doKey(ctx, key, &wire.Request{Op: wire.OpDelete, Key: key})
	return err
}

// CAS replaces key's value with newVal iff its current value equals expect.
func (cl *Cluster) CAS(ctx context.Context, key uint64, expect, newVal []byte) error {
	_, err := cl.doKey(ctx, key, &wire.Request{Op: wire.OpCAS, Key: key, OldValue: expect, Value: newVal})
	return err
}

// Atomic executes subs as one transaction. Every key must route to shards
// led by the same node — a node executes a multi-shard batch as one
// multi-view transaction, but the cluster does not run transactions across
// nodes. A batch spanning leaders fails with wire.ErrCrossShard (inside a
// ClusterError) without contacting any server.
func (cl *Cluster) Atomic(ctx context.Context, subs []wire.Sub) ([]wire.SubResult, error) {
	resp, err := cl.doRouted(ctx, &wire.Request{Op: wire.OpAtomic, Subs: subs},
		func(m *wire.ShardMap) (string, error) {
			addr := ""
			for i := range subs {
				a, err := leaderAddr(m, shardOfKey(m, subs[i].Key))
				if err != nil {
					return "", err
				}
				if addr == "" {
					addr = a
				} else if a != addr {
					return "", wire.ErrCrossShard
				}
			}
			if addr == "" {
				return "", wire.ErrBadRequest
			}
			return addr, nil
		})
	if err != nil {
		return nil, err
	}
	return resp.Subs, nil
}

// Add atomically adds delta to the counter at key (see Client.Add).
func (cl *Cluster) Add(ctx context.Context, key, delta uint64) (uint64, error) {
	subs, err := cl.Atomic(ctx, []wire.Sub{{Kind: wire.SubAdd, Key: key, Delta: delta}})
	if err != nil {
		return 0, err
	}
	if len(subs) != 1 {
		return 0, fmt.Errorf("client: ADD returned %d results", len(subs))
	}
	return subs[0].Sum, nil
}

// Scan iterates [start, end) in key order. A SCAN consults every shard, so
// it is servable only while a single node leads all of them; otherwise
// Scan fails with wire.ErrCrossShard (inside a ClusterError). A handoff
// that splits leadership mid-scan surfaces as an error from the Scanner.
func (cl *Cluster) Scan(start, end uint64, opts ScanOptions) (*Scanner, error) {
	cl.mu.Lock()
	m := cl.m
	cl.mu.Unlock()
	addr := ""
	for i := range m.Shards {
		a, err := leaderAddr(&m, m.Shards[i].Shard)
		if err != nil {
			return nil, &ClusterError{Epoch: m.Epoch, Err: err}
		}
		if addr == "" {
			addr = a
		} else if a != addr {
			return nil, &ClusterError{Epoch: m.Epoch, Err: wire.ErrCrossShard}
		}
	}
	if addr == "" {
		return nil, &ClusterError{Epoch: m.Epoch, Err: errStaleMap}
	}
	c, err := cl.nodeClient(addr)
	if err != nil {
		return nil, err
	}
	return c.Scan(start, end, opts), nil
}

// Stats fetches shard statistics from the leader of the given shard
// (wire.AllShards asks the seed-map's first node for all of its shards).
func (cl *Cluster) Stats(ctx context.Context, shard uint32) ([]wire.ShardStats, error) {
	req := &wire.Request{Op: wire.OpStats, Shard: shard}
	resp, err := cl.doRouted(ctx, req, func(m *wire.ShardMap) (string, error) {
		if shard == wire.AllShards {
			if len(m.Nodes) == 0 {
				return "", errStaleMap
			}
			return m.Nodes[0].Addr, nil
		}
		return leaderAddr(m, shard)
	})
	if err != nil {
		return nil, err
	}
	return resp.Stats, nil
}

// doKey routes a single-key request to the leader of the key's shard.
func (cl *Cluster) doKey(ctx context.Context, key uint64, req *wire.Request) (*wire.Response, error) {
	return cl.doRouted(ctx, req, func(m *wire.ShardMap) (string, error) {
		return leaderAddr(m, shardOfKey(m, key))
	})
}

// doRouted picks a node from the current map, sends, and absorbs routing
// failures: a WRONG_SHARD redirect or a transport error triggers a map
// refetch and a retry with jittered backoff, up to Options.MapRetries
// times. Typed protocol errors other than WRONG_SHARD pass straight
// through — they are the caller's, not the router's.
func (cl *Cluster) doRouted(ctx context.Context, req *wire.Request, pick func(*wire.ShardMap) (string, error)) (*wire.Response, error) {
	backoff := cl.opts.BusyBackoff
	var lastEpoch uint64 // newest epoch observed anywhere (for ClusterError)
	var needEpoch uint64 // refetch target: 0 = any fresh map, else Epoch >= needEpoch
	for attempt := 0; ; attempt++ {
		cl.mu.Lock()
		m := cl.m
		cl.mu.Unlock()
		if m.Epoch > lastEpoch {
			lastEpoch = m.Epoch
		}

		addr, perr := pick(&m)
		var resp *wire.Response
		var err error
		if perr != nil {
			err = perr
		} else {
			var c *Client
			if c, err = cl.nodeClient(addr); err == nil {
				resp, err = c.do(ctx, req)
			}
		}
		if err == nil {
			return resp, nil
		}

		var retry bool
		var werr *wire.Error
		switch {
		case errors.Is(err, wire.ErrCrossShard):
			// A cross-leader batch stays cross-leader under any refetch the
			// caller didn't ask for; fail fast with the map we used.
			return nil, &ClusterError{Epoch: lastEpoch, Err: wire.ErrCrossShard}
		case errors.As(err, &werr) && werr.Status == wire.StatusWrongShard:
			// The node redirected us; its detail carries its own map epoch.
			// Ahead of ours: our map is stale — refetch at least that epoch.
			// Behind ours: the node is catching up (e.g. a handoff target
			// that has not seen its promotion yet) — any fresh map plus a
			// backoff is enough, don't long-poll for an epoch that may never
			// come.
			e := wire.WrongShardEpoch(werr.Detail)
			switch {
			case e > m.Epoch:
				needEpoch = e
			case e == m.Epoch:
				needEpoch = e + 1 // node disagrees with our same-epoch map
			default:
				needEpoch = 0
			}
			if e > lastEpoch {
				lastEpoch = e
			}
			retry = true
		case errors.Is(err, ErrClosed), errors.Is(err, context.Canceled),
			errors.Is(err, context.DeadlineExceeded):
			return nil, err
		case errors.As(err, &werr):
			// Any other typed status (NOT_FOUND, CAS_MISMATCH, BUSY after the
			// per-node retry budget, ...) is a real answer from the right node.
			return nil, err
		default:
			// Transport failure: the node may be gone. Drop its pool so the
			// next attempt redials, refetch (the map may have moved its
			// shards — any fresh map will do), and retry.
			if addr != "" {
				cl.dropNode(addr)
			}
			needEpoch = 0
			retry = true
		}

		if !retry || attempt >= cl.opts.MapRetries {
			if _, ok := err.(*ClusterError); ok {
				return nil, err
			}
			return nil, &ClusterError{Epoch: lastEpoch, Err: err}
		}

		// Jittered backoff (50–150% of nominal), as in the BUSY retry path.
		d := backoff/2 + time.Duration(rand.Int63n(int64(backoff)+1))
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
		backoff *= 2

		if m2, ferr := cl.fetchMap(ctx, needEpoch); ferr == nil {
			cl.setMap(m2)
			if m2.Epoch > lastEpoch {
				lastEpoch = m2.Epoch
			}
		}
	}
}

// fetchMap fetches a shard map with Epoch >= minEpoch (minEpoch 0 accepts
// any fresh map). It asks the seed first, then every node of the cached
// map. A node whose map has not reached minEpoch yet is asked to
// long-poll (SHARDMAP_WATCH) within the remaining context budget, so a
// redirect that barely beat the map propagation still resolves.
func (cl *Cluster) fetchMap(ctx context.Context, minEpoch uint64) (wire.ShardMap, error) {
	cl.refreshMu.Lock()
	defer cl.refreshMu.Unlock()

	// Another goroutine may have refreshed while we queued.
	cl.mu.Lock()
	cur := cl.m
	cl.mu.Unlock()
	if minEpoch > 0 && cur.Epoch >= minEpoch {
		return cur, nil
	}

	addrs := []string{cl.seed}
	for i := range cur.Nodes {
		if a := cur.Nodes[i].Addr; a != cl.seed {
			addrs = append(addrs, a)
		}
	}
	var lastErr error = errStaleMap
	for _, addr := range addrs {
		c, err := cl.nodeClient(addr)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := c.do(ctx, &wire.Request{Op: wire.OpShardMapGet})
		if err == nil && minEpoch > 0 && resp.Map.Epoch < minEpoch {
			// This node hasn't observed the newer epoch yet: wait for it
			// rather than spinning on stale GETs.
			resp, err = c.do(ctx, &wire.Request{Op: wire.OpShardMapWatch, Key: minEpoch - 1})
		}
		if err != nil {
			lastErr = err
			continue
		}
		return resp.Map, nil
	}
	return wire.ShardMap{}, lastErr
}

// setMap installs m if it is newer than the cached map.
func (cl *Cluster) setMap(m wire.ShardMap) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if m.Epoch >= cl.m.Epoch {
		cl.m = m
	}
}

// nodeClient returns the pooled Client for addr, creating it lazily.
// Creation does not dial — the pool dials on first use.
func (cl *Cluster) nodeClient(addr string) (*Client, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, ErrClosed
	}
	if c := cl.clients[addr]; c != nil {
		return c, nil
	}
	c := &Client{addr: addr, opts: cl.opts}
	c.conns = make([]*poolConn, c.opts.PoolSize)
	cl.clients[addr] = c
	return c, nil
}

// dropNode closes and forgets addr's pool; a later request redials.
func (cl *Cluster) dropNode(addr string) {
	cl.mu.Lock()
	c := cl.clients[addr]
	delete(cl.clients, addr)
	cl.mu.Unlock()
	if c != nil {
		_ = c.Close()
	}
}

// shardOfKey maps a key to its wire shard under m's shard count, with the
// same placement hash every cluster node uses.
func shardOfKey(m *wire.ShardMap, key uint64) uint32 {
	if len(m.Shards) == 0 {
		return 0
	}
	return uint32(cluster.ShardOf(key, len(m.Shards)))
}

// leaderAddr resolves the advertised address of the node leading shard.
func leaderAddr(m *wire.ShardMap, shard uint32) (string, error) {
	rt := m.Route(shard)
	if rt == nil {
		return "", errStaleMap
	}
	n := m.Node(rt.Leader)
	if n == nil || n.Addr == "" {
		return "", errStaleMap
	}
	return n.Addr, nil
}
