package client

import (
	"context"

	"votm/wire"
)

// ScanOptions tunes a Scan. The zero value selects the defaults.
type ScanOptions struct {
	// PageSize is the per-page entry limit. It is clamped to
	// [1, wire.MaxScanKeys]; 0 selects wire.MaxScanKeys. The server may
	// return shorter pages than requested (it also bounds pages by value
	// bytes), so PageSize shapes round trips, not the result.
	PageSize int
}

// Scan iterates the ordered key range [start, end) in ascending key order.
// Pages are fetched lazily as Next is called; each page is an atomic,
// consistent snapshot of the whole keyspace, but the scan as a whole is
// not one snapshot — writes committed between pages appear or not
// according to where the cursor stands, exactly like iterating any shared
// ordered map under concurrent writers.
//
// Page fetches go through the client's normal request path, so BUSY
// responses (a repartition moved sub-shards mid-scan, a saturated queue)
// are retried transparently under Options.BusyRetries; the continuation
// cursor names a key, not server state, so a retried or resumed page is
// always well-defined.
//
//	sc := c.Scan(lo, hi, client.ScanOptions{})
//	for sc.Next(ctx) {
//	    e := sc.Entry()
//	    use(e.Key, e.Value)
//	}
//	if err := sc.Err(); err != nil { ... }
func (c *Client) Scan(start, end uint64, opts ScanOptions) *Scanner {
	limit := opts.PageSize
	if limit <= 0 || limit > wire.MaxScanKeys {
		limit = wire.MaxScanKeys
	}
	return &Scanner{c: c, start: start, end: end, limit: uint32(limit)}
}

// Scanner is a lazy, paging iterator over an ordered key range. Not safe
// for concurrent use.
type Scanner struct {
	c          *Client
	start, end uint64
	limit      uint32

	cursor    uint64
	hasCursor bool
	done      bool // no further pages after the buffered one

	entries []wire.ScanEntry
	i       int // index of the CURRENT entry (Entry); advanced by Next
	primed  bool
	err     error
}

// Next fetches the next entry, pulling the next page from the server when
// the buffered one is exhausted. It returns false at the end of the range
// or on error; check Err to tell the two apart.
func (s *Scanner) Next(ctx context.Context) bool {
	if s.err != nil {
		return false
	}
	if s.primed {
		s.i++
	}
	s.primed = true
	for s.i >= len(s.entries) {
		if s.done {
			return false
		}
		if !s.fetch(ctx) {
			return false
		}
	}
	return true
}

// fetch loads the next page into the buffer, reporting success.
func (s *Scanner) fetch(ctx context.Context) bool {
	resp, err := s.c.do(ctx, &wire.Request{
		Op:        wire.OpScan,
		Key:       s.start,
		End:       s.end,
		Limit:     s.limit,
		Cursor:    s.cursor,
		HasCursor: s.hasCursor,
	})
	if err != nil {
		s.err = err
		return false
	}
	s.entries, s.i = resp.Entries, 0
	s.done = !resp.More
	if resp.More {
		s.cursor, s.hasCursor = resp.Cursor, true
	}
	return true
}

// Entry returns the current entry. Valid only after a true Next; the
// returned slices remain valid across further Next calls.
func (s *Scanner) Entry() wire.ScanEntry { return s.entries[s.i] }

// Err returns the error that stopped the scan, nil after a clean end.
func (s *Scanner) Err() error { return s.err }
