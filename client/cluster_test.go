package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"votm/wire"
)

// stubClusterNode is a scriptable votmd cluster member: it answers
// SHARDMAP_GET/WATCH from its current map and hands every other request to
// the test's handler. It mirrors the splitRaceServer stub (splitrace_test.go)
// but speaks the v5 cluster ops, so the routing layer can be driven through
// a real TCP round trip without a real cluster.
type stubClusterNode struct {
	t  *testing.T
	ln net.Listener

	mu      sync.Mutex
	m       wire.ShardMap
	handler func(req *wire.Request) *wire.Response
	served  int // data (non-map) requests seen
	conns   []net.Conn
}

// kill simulates node death: stop accepting and sever live connections.
func (s *stubClusterNode) kill() {
	_ = s.ln.Close()
	s.mu.Lock()
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, nc := range conns {
		_ = nc.Close()
	}
}

func newStubClusterNode(t *testing.T, m wire.ShardMap) *stubClusterNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &stubClusterNode{t: t, ln: ln, m: m}
	go s.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return s
}

func (s *stubClusterNode) addr() string { return s.ln.Addr().String() }

func (s *stubClusterNode) setMap(m wire.ShardMap) {
	s.mu.Lock()
	s.m = m
	s.mu.Unlock()
}

func (s *stubClusterNode) setHandler(h func(req *wire.Request) *wire.Response) {
	s.mu.Lock()
	s.handler = h
	s.mu.Unlock()
}

func (s *stubClusterNode) servedData() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *stubClusterNode) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		s.conns = append(s.conns, nc)
		s.mu.Unlock()
		go s.serve(nc)
	}
}

func (s *stubClusterNode) serve(nc net.Conn) {
	defer nc.Close()
	for {
		req, err := wire.ReadRequest(nc)
		if err != nil {
			return
		}
		var resp *wire.Response
		switch req.Op {
		case wire.OpPing:
			resp = &wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOK}
		case wire.OpShardMapGet, wire.OpShardMapWatch:
			s.mu.Lock()
			m := s.m
			s.mu.Unlock()
			resp = &wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOK, Map: m}
		default:
			s.mu.Lock()
			s.served++
			h := s.handler
			s.mu.Unlock()
			if h != nil {
				resp = h(req)
			}
			if resp == nil {
				resp = &wire.Response{Op: req.Op, ID: req.ID, Status: wire.StatusOK}
			}
			resp.Op, resp.ID = req.Op, req.ID
		}
		if err := wire.WriteResponse(nc, resp); err != nil {
			return
		}
	}
}

// twoNodeMap builds a one-shard map at the given epoch led by `leader`.
func twoNodeMap(epoch uint64, leader uint32, addrA, addrB string) wire.ShardMap {
	return wire.ShardMap{
		Epoch: epoch,
		Nodes: []wire.NodeInfo{{ID: 1, Addr: addrA}, {ID: 2, Addr: addrB}},
		Shards: []wire.ShardRoute{
			{Shard: 0, Epoch: epoch, Leader: leader, Replicas: []uint32{1, 2}},
		},
	}
}

// TestClusterFollowsWrongShardRedirect: a handoff moves the shard between
// the client learning the map and sending — the old leader answers
// WRONG_SHARD with its newer epoch. The routing client must refetch the
// map and land the request on the new leader without the caller noticing.
func TestClusterFollowsWrongShardRedirect(t *testing.T) {
	a := newStubClusterNode(t, wire.ShardMap{})
	b := newStubClusterNode(t, wire.ShardMap{})
	m1 := twoNodeMap(1, 1, a.addr(), b.addr())
	m2 := twoNodeMap(2, 2, a.addr(), b.addr())
	a.setMap(m1)
	b.setMap(m2)

	// Node A has already handed the shard off: every data op redirects
	// with epoch 2, and its map service serves the new map on refetch.
	a.setHandler(func(req *wire.Request) *wire.Response {
		a.setMap(m2)
		return &wire.Response{
			Status: wire.StatusWrongShard,
			Value:  wire.WrongShardDetail(nil, 2),
		}
	})

	cl, err := DialCluster(a.addr(), Options{PoolSize: 1, BusyBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cl.Close()
	if got := cl.Epoch(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}

	if _, err := cl.Put(context.Background(), 7, []byte("v")); err != nil {
		t.Fatalf("Put across redirect: %v", err)
	}
	if got := b.servedData(); got != 1 {
		t.Errorf("new leader served %d data ops, want 1", got)
	}
	if got := cl.Epoch(); got != 2 {
		t.Errorf("client epoch after redirect = %d, want 2", got)
	}
}

// TestClusterRedirectLoopSurfacesClusterError: a node that keeps
// redirecting while the map never changes must not loop forever — after
// MapRetries the caller gets a typed *ClusterError that errors.Is-matches
// wire.ErrWrongShard and carries the epoch the cluster reported.
func TestClusterRedirectLoopSurfacesClusterError(t *testing.T) {
	a := newStubClusterNode(t, wire.ShardMap{})
	b := newStubClusterNode(t, wire.ShardMap{})
	// Both nodes agree A leads, but A redirects anyway (epoch 5): the map
	// can never satisfy the redirect, so retries must exhaust.
	m := twoNodeMap(5, 1, a.addr(), b.addr())
	a.setMap(m)
	b.setMap(m)
	a.setHandler(func(req *wire.Request) *wire.Response {
		return &wire.Response{
			Status: wire.StatusWrongShard,
			Value:  wire.WrongShardDetail(nil, 5),
		}
	})

	cl, err := DialCluster(a.addr(), Options{
		PoolSize:       1,
		BusyBackoff:    time.Millisecond,
		MapRetries:     2,
		RequestTimeout: 250 * time.Millisecond, // bounds the WATCH long-poll
	})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cl.Close()

	_, err = cl.Get(context.Background(), 7)
	var cerr *ClusterError
	if !errors.As(err, &cerr) {
		t.Fatalf("Get = %v, want *ClusterError", err)
	}
	if !errors.Is(err, wire.ErrWrongShard) {
		t.Errorf("errors.Is(err, ErrWrongShard) = false for %v", err)
	}
	if cerr.Epoch < 5 {
		t.Errorf("ClusterError.Epoch = %d, want >= 5", cerr.Epoch)
	}
	if got := a.servedData(); got != 3 { // initial try + MapRetries
		t.Errorf("leader saw %d attempts, want 3", got)
	}
}

// TestClusterAtomicCrossNode: a batch whose keys route to shards led by
// different nodes is refused client-side with wire.ErrCrossShard — the
// cluster does not run transactions across nodes.
func TestClusterAtomicCrossNode(t *testing.T) {
	a := newStubClusterNode(t, wire.ShardMap{})
	b := newStubClusterNode(t, wire.ShardMap{})
	m := wire.ShardMap{
		Epoch: 3,
		Nodes: []wire.NodeInfo{{ID: 1, Addr: a.addr()}, {ID: 2, Addr: b.addr()}},
		Shards: []wire.ShardRoute{
			{Shard: 0, Epoch: 3, Leader: 1},
			{Shard: 1, Epoch: 3, Leader: 2},
		},
	}
	a.setMap(m)
	b.setMap(m)

	cl, err := DialCluster(a.addr(), Options{PoolSize: 1})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cl.Close()

	// Find two keys on different shards under the 2-shard placement hash.
	var k0, k1 uint64
	foundK1 := false
	for k := uint64(0); k < 1024; k++ {
		if shardOfKey(&m, k) == 0 {
			k0 = k
		} else if !foundK1 {
			k1, foundK1 = k, true
		}
	}
	if !foundK1 {
		t.Fatal("no key found for shard 1")
	}

	_, err = cl.Atomic(context.Background(), []wire.Sub{
		{Kind: wire.SubPut, Key: k0, Value: []byte("a")},
		{Kind: wire.SubPut, Key: k1, Value: []byte("b")},
	})
	if !errors.Is(err, wire.ErrCrossShard) {
		t.Fatalf("cross-node Atomic = %v, want ErrCrossShard", err)
	}
	var cerr *ClusterError
	if !errors.As(err, &cerr) || cerr.Epoch != 3 {
		t.Fatalf("cross-node Atomic error = %#v, want *ClusterError at epoch 3", err)
	}
	if a.servedData() != 0 || b.servedData() != 0 {
		t.Errorf("cross-node batch reached a server (a=%d b=%d ops), want client-side refusal",
			a.servedData(), b.servedData())
	}

	// Same-leader batches still go through.
	if _, err := cl.Atomic(context.Background(), []wire.Sub{
		{Kind: wire.SubPut, Key: k0, Value: []byte("a")},
	}); err != nil {
		t.Fatalf("single-leader Atomic: %v", err)
	}
}

// TestClusterTransportFailover: the leader dies mid-session; the next
// request must redial, refetch the map (which now names the survivor),
// and succeed against the new leader.
func TestClusterTransportFailover(t *testing.T) {
	a := newStubClusterNode(t, wire.ShardMap{})
	b := newStubClusterNode(t, wire.ShardMap{})
	m1 := twoNodeMap(1, 1, a.addr(), b.addr())
	a.setMap(m1)
	b.setMap(m1)

	cl, err := DialCluster(b.addr(), Options{PoolSize: 1, BusyBackoff: time.Millisecond})
	if err != nil {
		t.Fatalf("DialCluster: %v", err)
	}
	defer cl.Close()

	if _, err := cl.Put(context.Background(), 7, []byte("v")); err != nil {
		t.Fatalf("Put to live leader: %v", err)
	}

	// Leader A dies; the survivor's map service promotes B.
	a.kill()
	b.setMap(twoNodeMap(2, 2, a.addr(), b.addr()))

	if _, err := cl.Put(context.Background(), 7, []byte("v2")); err != nil {
		t.Fatalf("Put after leader death: %v", err)
	}
	if got := b.servedData(); got != 1 {
		t.Errorf("survivor served %d data ops, want 1", got)
	}
	if got := cl.Epoch(); got != 2 {
		t.Errorf("client epoch after failover = %d, want 2", got)
	}
}
