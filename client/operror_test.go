package client

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"votm/wire"
)

// operrServer is a stub votmd that swallows the first `hold` requests
// without answering, then sends the connection-fatal OpError frame and hangs
// up — the server-side convention for an unrecoverable protocol violation.
// It lets the test pin the client-visible contract: every in-flight request
// resolves with a typed error, none block forever.
type operrServer struct {
	ln      net.Listener
	hold    int
	aborted atomic.Bool // first connection aborts; later ones serve normally
}

func newOperrServer(t *testing.T, hold int) *operrServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := &operrServer{ln: ln, hold: hold}
	go s.acceptLoop()
	t.Cleanup(func() { _ = ln.Close() })
	return s
}

func (s *operrServer) addr() string { return s.ln.Addr().String() }

func (s *operrServer) acceptLoop() {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.serve(nc)
	}
}

func (s *operrServer) serve(nc net.Conn) {
	defer nc.Close()
	abortThis := s.aborted.CompareAndSwap(false, true)
	held := 0
	for {
		req, err := wire.ReadRequest(nc)
		if err != nil {
			return
		}
		if abortThis && req.Op != wire.OpPing {
			if held++; held < s.hold {
				continue // swallowed: this request stays in flight
			}
			_ = wire.WriteResponse(nc, &wire.Response{
				Op:     wire.OpError,
				Status: wire.StatusBadRequest,
				Value:  []byte("frame 3 reuses an in-flight ID"),
			})
			return
		}
		if err := wire.WriteResponse(nc, &wire.Response{
			Op: req.Op, ID: req.ID, Status: wire.StatusOK,
		}); err != nil {
			return
		}
	}
}

// TestOpErrorFailsInFlightRequests: when the server aborts the connection
// with OpError, every pipelined in-flight request must resolve promptly with
// a typed error carrying the server's status — not hang awaiting a response
// that will never come, and not surface as a bare EOF.
func TestOpErrorFailsInFlightRequests(t *testing.T) {
	const inflight = 6
	s := newOperrServer(t, inflight)
	c, err := Dial(s.addr(), Options{PoolSize: 1, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	errs := make([]error, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Get(context.Background(), uint64(i))
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight requests still blocked after OpError + hangup")
	}

	for i, err := range errs {
		if err == nil {
			t.Errorf("request %d: nil error after server abort", i)
			continue
		}
		if !errors.Is(err, ErrBadRequest) {
			t.Errorf("request %d: %v, want wrap of ErrBadRequest", i, err)
		}
		if !strings.Contains(err.Error(), "server aborted connection") {
			t.Errorf("request %d: %q does not name the abort", i, err)
		}
	}

	// The aborted connection must not wedge the client: the pool marks it
	// broken and the next call redials transparently.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Get(ctx, 99); err != nil {
		t.Errorf("Get after redial: %v", err)
	}
}
