package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"
)

// TestClusterRequestRoundTrip: the v5 control-plane and node-to-node
// request frames survive encode/decode.
func TestClusterRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpShardMapGet, ID: 1},
		{Op: OpShardMapWatch, ID: 2, Key: 17},
		{Op: OpShardMapWatch, ID: 3, Key: 0},
		{Op: OpShardMapJoin, ID: 4, Value: []byte("127.0.0.1:7421")},
		{Op: OpShardMapUpdate, ID: 5, Shard: 3, Key: 2},
		{Op: OpReplicate, ID: 6, Shard: 1, Key: 0},
		{Op: OpReplicate, ID: 7, Shard: 2, Key: 99, Value: []byte("raw-wal-frames")},
		{Op: OpHandoff, ID: 8, Shard: 4, Phase: HandoffBegin, Key: 41},
		{Op: OpHandoff, ID: 9, Shard: 4, Phase: HandoffEntries, Value: []byte("packed-entries")},
		{Op: OpHandoff, ID: 10, Shard: 4, Phase: HandoffCommit, Key: 12},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if len(req.Value) == 0 {
			req.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

// TestClusterResponseRoundTrip: shard maps, replication cursors and the
// WRONG_SHARD redirect survive encode/decode.
func TestClusterResponseRoundTrip(t *testing.T) {
	m := ShardMap{
		Epoch: 9,
		Nodes: []NodeInfo{
			{ID: 1, Addr: "127.0.0.1:7421"},
			{ID: 2, Addr: "127.0.0.1:7422"},
		},
		Shards: []ShardRoute{
			{Shard: 0, Epoch: 3, Leader: 1, Replicas: []uint32{2}},
			{Shard: 1, Epoch: 9, Leader: 2},
		},
	}
	resps := []*Response{
		{Op: OpShardMapGet, ID: 1, Map: m},
		{Op: OpShardMapWatch, ID: 2, Map: m},
		{Op: OpShardMapUpdate, ID: 3, Map: m},
		{Op: OpShardMapJoin, ID: 4, Cursor: 2, Map: m},
		{Op: OpShardMapGet, ID: 5, Map: ShardMap{Epoch: 1}},
		{Op: OpReplicate, ID: 6, Cursor: 100},
		{Op: OpHandoff, ID: 7, Cursor: 42},
		{Op: OpGet, ID: 8, Status: StatusWrongShard, Value: WrongShardDetail(nil, 7)},
	}
	for _, resp := range resps {
		got := roundTripResponse(t, resp)
		if len(resp.Value) == 0 {
			resp.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(resp, got) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", resp.Op, got, resp)
		}
	}
}

// TestWrongShardError: the typed sentinel matches and the detail bytes
// carry the redirecting node's map epoch.
func TestWrongShardError(t *testing.T) {
	err := StatusWrongShard.Err(WrongShardDetail(nil, 31))
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("WRONG_SHARD error does not match ErrWrongShard: %v", err)
	}
	var we *Error
	if !errors.As(err, &we) {
		t.Fatalf("not a *Error: %v", err)
	}
	if got := WrongShardEpoch(we.Detail); got != 31 {
		t.Errorf("WrongShardEpoch = %d, want 31", got)
	}
	if got := WrongShardEpoch(nil); got != 0 {
		t.Errorf("WrongShardEpoch(nil) = %d, want 0", got)
	}
	if got := WrongShardEpoch([]byte{1, 2}); got != 0 {
		t.Errorf("WrongShardEpoch(short) = %d, want 0", got)
	}
}

// TestClusterVersionGate: v5 opcodes stamped with an older version byte are
// protocol violations in both directions.
func TestClusterVersionGate(t *testing.T) {
	for _, op := range []Op{OpShardMapGet, OpShardMapWatch, OpShardMapJoin, OpShardMapUpdate, OpReplicate, OpHandoff} {
		frame, err := AppendRequest(nil, &Request{Op: op, ID: 1})
		if err != nil {
			t.Fatal(err)
		}
		frame[4] = 4
		if _, err := ReadRequest(bytes.NewReader(frame)); !errors.Is(err, ErrProtocol) {
			t.Errorf("v4 %v request: got %v, want ErrProtocol", op, err)
		}
		respFrame, err := AppendResponse(nil, &Response{Op: op, ID: 2})
		if err != nil {
			t.Fatal(err)
		}
		respFrame[4] = 4
		if _, err := ReadResponse(bytes.NewReader(respFrame)); !errors.Is(err, ErrProtocol) {
			t.Errorf("v4 %v response: got %v, want ErrProtocol", op, err)
		}
	}
}

// TestHandoffPhaseValidation: an out-of-range phase is rejected by both the
// encoder and the parser.
func TestHandoffPhaseValidation(t *testing.T) {
	if _, err := AppendRequest(nil, &Request{Op: OpHandoff, ID: 1, Phase: HandoffCommit + 1}); !errors.Is(err, ErrProtocol) {
		t.Errorf("encode phase %d: got %v, want ErrProtocol", HandoffCommit+1, err)
	}
	frame, err := AppendRequest(nil, &Request{Op: OpHandoff, ID: 2, Shard: 1, Phase: HandoffBegin})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: len u32 | ver | op | id u32 | shard u32 | phase u8 | ...
	frame[14] = byte(HandoffCommit) + 1
	if _, err := ParseRequest(frame[4:]); !errors.Is(err, ErrProtocol) {
		t.Errorf("parse phase %d: got %v, want ErrProtocol", HandoffCommit+1, err)
	}
}

// TestShardMapBounds: maps beyond the node/shard/replica bounds are
// rejected by both the encoder and the parser, and truncated map frames
// fail typed at every cut point.
func TestShardMapBounds(t *testing.T) {
	over := ShardMap{Epoch: 1, Nodes: make([]NodeInfo, MaxMapNodes+1)}
	if _, err := AppendResponse(nil, &Response{Op: OpShardMapGet, ID: 1, Map: over}); !errors.Is(err, ErrProtocol) {
		t.Errorf("encode %d nodes: got %v, want ErrProtocol", MaxMapNodes+1, err)
	}
	overShards := ShardMap{Epoch: 1, Shards: make([]ShardRoute, MaxMapShards+1)}
	if _, err := AppendResponse(nil, &Response{Op: OpShardMapGet, ID: 2, Map: overShards}); !errors.Is(err, ErrProtocol) {
		t.Errorf("encode %d shards: got %v, want ErrProtocol", MaxMapShards+1, err)
	}
	overReplicas := ShardMap{Epoch: 1, Shards: []ShardRoute{{Replicas: make([]uint32, MaxShardReplicas+1)}}}
	if _, err := AppendResponse(nil, &Response{Op: OpShardMapGet, ID: 3, Map: overReplicas}); !errors.Is(err, ErrProtocol) {
		t.Errorf("encode %d replicas: got %v, want ErrProtocol", MaxShardReplicas+1, err)
	}

	frame, err := AppendResponse(nil, &Response{Op: OpShardMapGet, ID: 4, Map: ShardMap{
		Epoch:  2,
		Nodes:  []NodeInfo{{ID: 1, Addr: "127.0.0.1:7421"}},
		Shards: []ShardRoute{{Shard: 0, Epoch: 2, Leader: 1, Replicas: []uint32{2, 3}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Patch the node count beyond the bound.
	// Layout: len u32 | ver | op|0x80 | id u32 | status | epoch u64 | nnodes u16 | ...
	patched := append([]byte(nil), frame...)
	binary.LittleEndian.PutUint16(patched[19:], MaxMapNodes+1)
	if _, err := ParseResponse(patched[4:]); !errors.Is(err, ErrProtocol) {
		t.Errorf("parse %d nodes: got %v, want ErrProtocol", MaxMapNodes+1, err)
	}
	for cut := 1; cut < len(frame)-4; cut++ {
		short := append([]byte(nil), frame[:len(frame)-cut]...)
		binary.LittleEndian.PutUint32(short, uint32(len(short)-4))
		if _, err := ParseResponse(short[4:]); err == nil {
			t.Fatalf("truncated shard map (cut %d bytes) parsed", cut)
		}
	}
}

// TestShardMapLookups: Node and Route resolve by id, including when the
// shard list is not a dense 0..n-1 identity mapping.
func TestShardMapLookups(t *testing.T) {
	m := ShardMap{
		Epoch: 4,
		Nodes: []NodeInfo{{ID: 3, Addr: "a"}, {ID: 1, Addr: "b"}},
		Shards: []ShardRoute{
			{Shard: 5, Epoch: 1, Leader: 3},
			{Shard: 0, Epoch: 4, Leader: 1},
		},
	}
	if n := m.Node(1); n == nil || n.Addr != "b" {
		t.Errorf("Node(1) = %+v", n)
	}
	if n := m.Node(9); n != nil {
		t.Errorf("Node(9) = %+v, want nil", n)
	}
	if r := m.Route(5); r == nil || r.Leader != 3 {
		t.Errorf("Route(5) = %+v", r)
	}
	if r := m.Route(0); r == nil || r.Leader != 1 {
		t.Errorf("Route(0) = %+v", r)
	}
	if r := m.Route(7); r != nil {
		t.Errorf("Route(7) = %+v, want nil", r)
	}
}
