package wire

import (
	"bytes"
	"testing"
)

// The datapath contract: once buffers have warmed up, encoding a frame into
// a retained scratch buffer and decoding one into a pooled object allocate
// nothing. These guards keep the zero-allocation wire path honest — a
// regression here silently reintroduces per-request garbage on the server's
// hot loop.

func TestAppendRequestAllocs(t *testing.T) {
	req := &Request{Op: OpCAS, ID: 7, Key: 42,
		OldValue: bytes.Repeat([]byte{0xA5}, 96),
		Value:    bytes.Repeat([]byte{0x5A}, 128)}
	dst := make([]byte, 0, 512)
	if n := testing.AllocsPerRun(200, func() {
		out, err := AppendRequest(dst[:0], req)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	}); n != 0 {
		t.Fatalf("AppendRequest allocates %.1f/op, want 0", n)
	}
}

func TestAppendResponseAllocs(t *testing.T) {
	resp := &Response{Op: OpGet, ID: 9, Status: StatusOK,
		Value: bytes.Repeat([]byte{0xEE}, 256)}
	dst := make([]byte, 0, 512)
	if n := testing.AllocsPerRun(200, func() {
		out, err := AppendResponse(dst[:0], resp)
		if err != nil {
			t.Fatal(err)
		}
		dst = out[:0]
	}); n != 0 {
		t.Fatalf("AppendResponse allocates %.1f/op, want 0", n)
	}
}

func TestParseRequestReuseAllocs(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{Op: OpAtomic, ID: 3, Subs: []Sub{
		{Kind: SubPut, Key: 1, Value: bytes.Repeat([]byte{1}, 64)},
		{Kind: SubGet, Key: 2},
		{Kind: SubAdd, Key: 3, Delta: 11},
	}})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:] // ParseRequestReuse takes the length-stripped payload
	req := NewRequest()
	defer req.Release()
	// Warm the Subs capacity once, then the steady state must be clean.
	if err := ParseRequestReuse(req, payload); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := ParseRequestReuse(req, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ParseRequestReuse allocates %.1f/op, want 0", n)
	}
}

func TestParseResponseReuseAllocs(t *testing.T) {
	frame, err := AppendResponse(nil, &Response{Op: OpGet, ID: 5,
		Status: StatusOK, Value: bytes.Repeat([]byte{7}, 200)})
	if err != nil {
		t.Fatal(err)
	}
	payload := frame[4:]
	resp := NewResponse()
	defer resp.Release()
	if err := ParseResponseReuse(resp, payload); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := ParseResponseReuse(resp, payload); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ParseResponseReuse allocates %.1f/op, want 0", n)
	}
}

// TestReadRequestReuseSteadyState drives the full framed read path through
// a reused Request: after the first read grows the retained frame buffer,
// subsequent reads of same-or-smaller frames allocate nothing.
func TestReadRequestReuseSteadyState(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{Op: OpPut, ID: 2, Key: 8,
		Value: bytes.Repeat([]byte{3}, 128)})
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest()
	defer req.Release()
	var r bytes.Reader
	r.Reset(frame)
	if err := ReadRequestReuse(&r, req); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		if err := ReadRequestReuse(&r, req); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("ReadRequestReuse steady state allocates %.1f/op, want 0", n)
	}
	if req.Op != OpPut || req.Key != 8 || len(req.Value) != 128 {
		t.Fatalf("reused request decoded wrong: %+v", req)
	}
}

// TestBorrowedDecodeDoesNotAlias verifies the borrow discipline: decoded
// byte fields alias the frame buffer (no copy), so they must match the
// encoded bytes, and a second parse of a different frame must not leak the
// first frame's contents.
func TestBorrowedDecodeDoesNotAlias(t *testing.T) {
	f1, _ := AppendRequest(nil, &Request{Op: OpPut, ID: 1, Key: 1, Value: []byte("first-value")})
	f2, _ := AppendRequest(nil, &Request{Op: OpPut, ID: 2, Key: 2, Value: []byte("second")})
	req := NewRequest()
	defer req.Release()
	if err := ParseRequestReuse(req, f1[4:]); err != nil {
		t.Fatal(err)
	}
	if string(req.Value) != "first-value" {
		t.Fatalf("first parse: %q", req.Value)
	}
	if err := ParseRequestReuse(req, f2[4:]); err != nil {
		t.Fatal(err)
	}
	if string(req.Value) != "second" {
		t.Fatalf("second parse: %q", req.Value)
	}
}
