// Package wire defines votmd's length-prefixed binary protocol: the frame
// layout, opcodes, status codes and typed errors shared by the server
// (internal/server) and the Go client (package client). The format is
// documented in docs/PROTOCOL.md; this package is the single source of
// truth for its constants.
//
// Every frame is a little-endian u32 payload length followed by the
// payload. Request payloads start with a version byte, an opcode and a u32
// request ID; response payloads echo the opcode (with the high bit set) and
// the ID, then carry a status byte. Request IDs let a connection pipeline:
// responses may complete out of order and are matched by ID.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
)

// Version is the protocol version byte written into every encoded frame.
// Version 2 added the durability fields of ShardStats (WAL/snapshot meters);
// version 3 added its cross-shard 2PC meters and made multi-shard ATOMIC
// batches a served capability rather than a CROSS_SHARD rejection; version 4
// added the SCAN opcode (ordered range reads with cursor continuation) and
// ShardStats' scan meters; version 5 added the cluster control plane — the
// SHARDMAP_* opcodes (epoch-versioned shard→node assignments), the
// node-to-node REPLICATE/HANDOFF stream opcodes, the WRONG_SHARD status
// (epoch-stamped redirect) and ShardStats' replication meters; version 6
// added ShardStats' adaptive-batching meters (EffectiveBatch,
// AdmissionRejects, RingFullEvents, QueueHighWaterWin). Request layouts of
// the pre-existing opcodes are identical in versions 1-6; OpScan frames are
// valid only at version 4+, the cluster opcodes only at version 5+.
// Decoders accept any version in [MinVersion, Version] — an older STATS
// frame simply carries fewer fields — and must reject frames outside that
// range with StatusBadRequest (servers) or ErrProtocol (clients).
const Version = 6

// MinVersion is the oldest protocol version decoders still accept.
const MinVersion = 1

// MaxFrame bounds a frame's payload size; larger frames indicate a corrupt
// or hostile stream and the connection must be closed.
const MaxFrame = 1 << 20

// MaxAtomicOps bounds the number of sub-operations in one ATOMIC batch.
const MaxAtomicOps = 1024

// MaxScanKeys bounds the number of entries one SCAN page may request or
// carry; larger result sets continue through the response cursor.
const MaxScanKeys = 1024

// respFlag marks a response opcode (request opcode | respFlag).
const respFlag = 0x80

// Op is a protocol opcode.
type Op uint8

// Protocol opcodes.
const (
	OpPing   Op = 0x01 // liveness probe; empty body both ways
	OpGet    Op = 0x02 // key -> value bytes
	OpPut    Op = 0x03 // key + value bytes -> created flag
	OpDelete Op = 0x04 // key -> ok / not found
	OpCAS    Op = 0x05 // key + expected bytes + new bytes
	OpAtomic Op = 0x06 // single-shard multi-key transaction
	OpStats  Op = 0x07 // per-shard statistics snapshot
	OpScan   Op = 0x08 // ordered range read with cursor continuation (v4+)

	// Cluster control plane (v5+). The SHARDMAP_* opcodes talk to the
	// shard-map service (hosted by a votmd node or a standalone seed
	// process); REPLICATE and HANDOFF are node-to-node streams.
	OpShardMapGet    Op = 0x09 // fetch the current shard map
	OpShardMapWatch  Op = 0x0A // long-poll: answer when the map epoch exceeds Key
	OpShardMapJoin   Op = 0x0B // register this node (Value = advertised addr) -> node id + map
	OpShardMapUpdate Op = 0x0C // reassign Shard's leader to node Key -> new map
	OpReplicate      Op = 0x0D // leader->follower WAL batch frames for Shard starting at seq Key
	OpHandoff        Op = 0x0E // leader->target snapshot install for Shard (Phase: begin/entries/commit)

	// OpError is a response-only opcode: the server's reply to a frame it
	// could not parse. The stream is unframed from that point on — the real
	// opcode and request ID are unknowable — so the reply carries ID 0 and
	// this reserved opcode, which can never collide with a pipelined
	// request's pending ID/opcode pair, and the connection is then closed.
	// Clients must treat it as connection-fatal and fail every in-flight
	// request. It is invalid in request frames.
	OpError Op = 0x7F
)

func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpCAS:
		return "CAS"
	case OpAtomic:
		return "ATOMIC"
	case OpStats:
		return "STATS"
	case OpScan:
		return "SCAN"
	case OpShardMapGet:
		return "SHARDMAP_GET"
	case OpShardMapWatch:
		return "SHARDMAP_WATCH"
	case OpShardMapJoin:
		return "SHARDMAP_JOIN"
	case OpShardMapUpdate:
		return "SHARDMAP_UPDATE"
	case OpReplicate:
		return "REPLICATE"
	case OpHandoff:
		return "HANDOFF"
	case OpError:
		return "ERROR"
	}
	return fmt.Sprintf("op(0x%02x)", uint8(o))
}

func (o Op) valid() bool { return (o >= OpPing && o <= OpHandoff) || o == OpError }

// Status is a response status code.
type Status uint8

// Response status codes.
const (
	StatusOK          Status = 0
	StatusNotFound    Status = 1 // GET/DELETE/CAS on an absent key
	StatusBusy        Status = 2 // shard in-flight bound exceeded: backpressure
	StatusCASMismatch Status = 3 // CAS expectation failed; detail = current value
	StatusCrossShard  Status = 4 // legacy (pre-v3): servers now execute multi-shard ATOMIC
	StatusBadRequest  Status = 5 // malformed or semantically invalid request
	StatusTooLarge    Status = 6 // value exceeds the server's value bound
	StatusTxFault     Status = 7 // transaction died server-side (e.g. injected panic)
	StatusShutdown    Status = 8 // server is draining; no new requests accepted
	StatusInternal    Status = 9 // unexpected server error

	// StatusWrongShard (v5) is the cluster redirect: the addressed node does
	// not lead the request's shard. The detail bytes are the node's current
	// shard-map epoch as a little-endian u64 (see WrongShardEpoch) — a client
	// whose map epoch is older must refetch the map and retry against the
	// shard's current leader.
	StatusWrongShard Status = 10
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBusy:
		return "BUSY"
	case StatusCASMismatch:
		return "CAS_MISMATCH"
	case StatusCrossShard:
		return "CROSS_SHARD"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusTooLarge:
		return "TOO_LARGE"
	case StatusTxFault:
		return "TX_FAULT"
	case StatusShutdown:
		return "SHUTTING_DOWN"
	case StatusInternal:
		return "INTERNAL"
	case StatusWrongShard:
		return "WRONG_SHARD"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// Error is a typed protocol error: a non-OK response status plus its
// optional detail bytes (for StatusCASMismatch the detail is the key's
// current value). errors.Is matches on Status alone, so
// errors.Is(err, wire.ErrBusy) works regardless of detail.
type Error struct {
	Status Status
	Detail []byte
}

func (e *Error) Error() string {
	if len(e.Detail) == 0 || e.Status == StatusCASMismatch {
		return "votmd: " + e.Status.String()
	}
	return fmt.Sprintf("votmd: %s: %s", e.Status, e.Detail)
}

// Is matches any *Error with the same status, making the package-level
// sentinels usable as errors.Is targets.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Status == e.Status
}

// Typed protocol errors, one per non-OK status. Match with errors.Is.
var (
	ErrNotFound    = &Error{Status: StatusNotFound}
	ErrBusy        = &Error{Status: StatusBusy}
	ErrCASMismatch = &Error{Status: StatusCASMismatch}
	ErrCrossShard  = &Error{Status: StatusCrossShard}
	ErrBadRequest  = &Error{Status: StatusBadRequest}
	ErrTooLarge    = &Error{Status: StatusTooLarge}
	ErrTxFault     = &Error{Status: StatusTxFault}
	ErrShutdown    = &Error{Status: StatusShutdown}
	ErrInternal    = &Error{Status: StatusInternal}
	ErrWrongShard  = &Error{Status: StatusWrongShard}
)

// WrongShardDetail encodes a shard-map epoch as WRONG_SHARD detail bytes.
func WrongShardDetail(dst []byte, epoch uint64) []byte { return appendU64(dst, epoch) }

// WrongShardEpoch decodes the shard-map epoch carried by a WRONG_SHARD
// error's detail bytes; 0 if the detail is absent or malformed.
func WrongShardEpoch(detail []byte) uint64 {
	if len(detail) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(detail)
}

// Err converts a status (plus detail) to its typed error; StatusOK is nil.
func (s Status) Err(detail []byte) error {
	if s == StatusOK {
		return nil
	}
	return &Error{Status: s, Detail: detail}
}

// ErrProtocol is returned when a peer violates the framing rules (bad
// version, oversized frame, truncated payload). Unlike an *Error it is not
// recoverable: the connection must be dropped.
var ErrProtocol = errors.New("wire: protocol violation")

// HandoffPhase sequences an OpHandoff snapshot install (v5). A handoff
// ships a shard's state in chunks: one begin frame (Key = the snapshot's
// WAL sequence), any number of entries frames (Value = packed key/value
// entries), and one commit frame (Key = the shard's new epoch, or 0 when
// the install leaves the target a follower rather than the new leader).
type HandoffPhase uint8

// OpHandoff phases.
const (
	HandoffBegin   HandoffPhase = 0
	HandoffEntries HandoffPhase = 1
	HandoffCommit  HandoffPhase = 2
)

func (p HandoffPhase) valid() bool { return p <= HandoffCommit }

// MaxMapNodes bounds the node list of an encoded shard map.
const MaxMapNodes = 1024

// MaxMapShards bounds the shard-route list of an encoded shard map.
const MaxMapShards = 16384

// MaxShardReplicas bounds one shard route's replica list.
const MaxShardReplicas = 8

// NodeInfo is one cluster node in a shard map: its seed-assigned id and
// the address peers and clients dial it at.
type NodeInfo struct {
	ID   uint32
	Addr string
}

// ShardRoute is one wire shard's placement: the node that leads it (serves
// reads and writes), the follower nodes replicating its WAL, and the epoch
// at which this assignment was made. Cluster routing is by parent wire
// shard id — a node's internal auto-split sub-shards are invisible here.
type ShardRoute struct {
	Shard    uint32
	Epoch    uint64
	Leader   uint32
	Replicas []uint32
}

// ShardMap is the cluster's epoch-versioned shard→node assignment, served
// by the shard-map service over OpShardMapGet/Watch. Epoch increases on
// every change; a ShardRoute's Epoch records the map epoch at which that
// shard's placement last changed.
type ShardMap struct {
	Epoch  uint64
	Nodes  []NodeInfo
	Shards []ShardRoute
}

// Node returns the NodeInfo with the given id, or nil.
func (m *ShardMap) Node(id uint32) *NodeInfo {
	for i := range m.Nodes {
		if m.Nodes[i].ID == id {
			return &m.Nodes[i]
		}
	}
	return nil
}

// Route returns the ShardRoute for the given wire shard id, or nil.
func (m *ShardMap) Route(shard uint32) *ShardRoute {
	if int(shard) < len(m.Shards) && m.Shards[shard].Shard == shard {
		return &m.Shards[shard]
	}
	for i := range m.Shards {
		if m.Shards[i].Shard == shard {
			return &m.Shards[i]
		}
	}
	return nil
}

// SubKind identifies one sub-operation of an ATOMIC batch.
type SubKind uint8

// ATOMIC sub-operation kinds.
const (
	SubGet    SubKind = 1 // read a key within the batch's transaction
	SubPut    SubKind = 2 // set key to Value
	SubDelete SubKind = 3 // remove key
	SubAdd    SubKind = 4 // 64-bit wrapping add of Delta; absent keys start at 0
)

func (k SubKind) valid() bool { return k >= SubGet && k <= SubAdd }

// Sub is one sub-operation of an ATOMIC batch. The batch executes as one
// transaction regardless of where its keys hash: a batch spanning shards is
// run by a coordinating worker as a single multi-view transaction (votmd
// ≥ protocol version 3; older servers answered CROSS_SHARD).
type Sub struct {
	Kind  SubKind
	Key   uint64
	Value []byte // SubPut payload
	Delta uint64 // SubAdd operand
}

// SubResult is the per-sub-operation outcome of a committed ATOMIC batch.
type SubResult struct {
	Kind   SubKind
	Status Status // StatusOK or StatusNotFound (SubGet/SubDelete on absent keys)
	Value  []byte // SubGet result
	Sum    uint64 // SubAdd result: the key's new value
}

// ShardStats is one shard's statistics snapshot as served by OpStats.
type ShardStats struct {
	Shard        uint32
	Engine       string
	Quota        uint32
	SettledQuota uint32
	QuotaMoves   uint64
	Commits      uint64
	Aborts       uint64
	Escalations  uint64
	Panics       uint64
	SuccessNs    uint64
	AbortNs      uint64
	Delta        float64 // δ(Q) estimate; NaN encoded as its IEEE bits
	Keys         uint64  // live keys in the shard
	QuotaEvents  uint64  // quota changes recorded by the server's trace.Recorder
	Repartitions uint64  // online splits executed on this shard (0 unless auto-split is on)

	// Batching meters (group-commit shard workers): Groups counts committed
	// group transactions, GroupOps the requests they carried (GroupOps /
	// Groups = mean group size), and QueueHighWater the maximum observed
	// depth of the sub-shard's request queue since startup.
	Groups         uint64
	GroupOps       uint64
	QueueHighWater uint64

	// Durability meters (version 2; zero when decoding a version-1 frame or
	// when the server runs with durability off). WalAppends counts WAL batch
	// appends (one per durable write group), WalBytes the bytes they wrote,
	// Fsyncs the fsync calls actually issued (≤ WalAppends thanks to
	// group-commit piggybacking), SnapshotAgeSec the seconds since the
	// shard's last snapshot (SnapshotNever if none yet), and ReplayedRecords
	// the redo records replayed during this process's startup recovery.
	WalAppends      uint64
	WalBytes        uint64
	Fsyncs          uint64
	SnapshotAgeSec  uint64
	ReplayedRecords uint64

	// Cross-shard ATOMIC meters (version 3; zero when decoding an older
	// frame). CrossShardGroups counts committed multi-shard groups this
	// shard participated in, CrossShardPrepares the 2PC prepare records it
	// appended, and PrepareAborts the prepares that ended in an abort
	// (mid-protocol WAL fault, or an undecided prepare aborted by startup
	// recovery).
	CrossShardGroups   uint64
	CrossShardPrepares uint64
	PrepareAborts      uint64

	// Scan meters (version 4; zero when decoding an older frame). Scans
	// counts SCAN pages this shard coordinated; ScannedKeys the entries it
	// contributed to any page's merge.
	Scans       uint64
	ScannedKeys uint64

	// Replication meters (version 5; zero when decoding an older frame or
	// outside cluster mode). FollowerAcks is the leader's acked-follower
	// watermark: the highest WAL sequence every live follower has durably
	// acknowledged (0 with no followers attached). ReplicaLagRecords is the
	// leader's last-appended sequence minus that watermark. Handoffs counts
	// HANDOFF installs and live shard moves this shard took part in.
	FollowerAcks      uint64
	ReplicaLagRecords uint64
	Handoffs          uint64

	// Adaptive-batching meters (version 6; zero when decoding an older
	// frame). EffectiveBatch is the controller's current group-size bound
	// (the static BatchMax when adaptive batching is off). AdmissionRejects
	// counts BUSY answers from the latency-budget admission gate,
	// RingFullEvents the ones from the dispatch queue actually being full.
	// QueueHighWaterWin is the queue high-water over the last two 15 s
	// windows — the decayed companion to the lifetime QueueHighWater.
	EffectiveBatch    uint64
	AdmissionRejects  uint64
	RingFullEvents    uint64
	QueueHighWaterWin uint64
}

// SnapshotNever is the SnapshotAgeSec sentinel meaning "no snapshot yet".
const SnapshotNever = ^uint64(0)

// AllShards is the OpStats shard selector meaning "every shard".
const AllShards = ^uint32(0)

// Request is a decoded request frame. Fields beyond Op/ID are populated
// per-opcode: Key (GET/PUT/DELETE/CAS; SCAN start key), Value (PUT/CAS new
// value), OldValue (CAS expectation), Subs (ATOMIC), Shard (STATS),
// End/Limit/Cursor/HasCursor (SCAN).
//
// Decoded byte fields (Value, OldValue, Sub.Value) borrow the parsed
// payload: they are sub-slices of the buffer handed to ParseRequest /
// ParseRequestReuse and stay valid only as long as that buffer does. A
// request obtained from NewRequest owns its frame buffer, so its borrowed
// fields live until Release or the next ReadRequestReuse.
type Request struct {
	Op       Op
	ID       uint32
	Key      uint64
	Value    []byte
	OldValue []byte
	Subs     []Sub
	Shard    uint32

	// SCAN fields (v4+): the request asks for up to Limit entries of the
	// half-open key range [Key, End). A continuation page sets HasCursor and
	// resumes at Cursor (the cursor a previous response returned). Limit is
	// capped at MaxScanKeys at the framing layer; range/cursor semantics
	// (empty range, cursor outside the range) are validated by the server,
	// which answers BAD_REQUEST rather than poisoning the stream.
	End       uint64
	Cursor    uint64
	Limit     uint32
	HasCursor bool

	// Phase sequences an OpHandoff install (v5). The cluster opcodes reuse
	// the fields above: SHARDMAP_WATCH carries the caller's map epoch in
	// Key; SHARDMAP_JOIN its advertised address in Value; SHARDMAP_UPDATE
	// the shard in Shard and the new leader's node id in Key; REPLICATE the
	// shard in Shard, the first batch sequence in Key (0 = probe) and raw
	// CRC-framed WAL batch frames in Value; HANDOFF the shard in Shard plus
	// per-phase Key/Value (see HandoffPhase).
	Phase HandoffPhase

	// frame is the retained frame-payload buffer of a pooled request
	// (ReadRequestReuse reads into it; the byte fields above borrow it).
	frame []byte
}

// ScanEntry is one key/value pair of a SCAN result page. Value borrows the
// parsed payload buffer like every other decoded byte field.
type ScanEntry struct {
	Key   uint64
	Value []byte
}

// Response is a decoded response frame. Value carries GET results and
// non-OK detail bytes; Subs carries ATOMIC results; Stats carries STATS
// results; Created reports whether a PUT inserted (vs updated); Entries,
// More and Cursor carry a SCAN page (More set means the range has further
// entries and Cursor is where the next page resumes).
//
// Like Request, decoded byte fields borrow the parsed payload buffer.
type Response struct {
	Op      Op
	ID      uint32
	Status  Status
	Value   []byte
	Created bool
	Subs    []SubResult
	Stats   []ShardStats
	Entries []ScanEntry
	More    bool
	Cursor  uint64

	// Map carries the shard map of an OK SHARDMAP_GET/WATCH/JOIN/UPDATE
	// response (v5). Unlike the borrowed byte fields it owns its memory —
	// the control plane is off the hot path, so decode copies. Cursor is
	// reused by the cluster opcodes: SHARDMAP_JOIN returns the assigned
	// node id, REPLICATE and HANDOFF the follower's next expected WAL
	// sequence.
	Map ShardMap

	// Next chains responses for batched producer→writer hand-off (a group
	// worker sends a whole group's responses for one connection as a single
	// chain). It is transport plumbing, never encoded, and reset on Release.
	Next *Response

	frame []byte // retained frame buffer of a pooled response (ReadResponseReuse)
}

// Err returns the response's typed error, nil for StatusOK. The returned
// error's Detail aliases r.Value; callers that outlive r (pooled responses)
// must copy it.
func (r *Response) Err() error { return r.Status.Err(r.Value) }

// SetDetail sets r.Value to the bytes of s, reusing r.Value's capacity —
// the pooled-response-friendly way to attach a status detail.
func (r *Response) SetDetail(s string) { r.Value = append(r.Value[:0], s...) }

// --- object pooling ----------------------------------------------------

// Request and Response objects are pooled so the steady-state server and
// client datapaths allocate nothing per frame: a pooled object keeps its
// frame buffer, its Value scratch and its Subs backing array across
// recycles. Ownership is explicit — whoever holds the object calls Release
// exactly once, after which every borrowed sub-slice is invalid.

var requestPool = sync.Pool{New: func() any { return new(Request) }}
var responsePool = sync.Pool{New: func() any { return new(Response) }}

// NewRequest returns a pooled Request. Release it when the request and
// every slice borrowed from it are no longer referenced.
func NewRequest() *Request { return requestPool.Get().(*Request) }

// Release resets r (keeping its frame and Subs capacity) and returns it to
// the pool. r and its borrowed slices must not be used afterwards.
func (r *Request) Release() {
	r.reset()
	requestPool.Put(r)
}

func (r *Request) reset() {
	frame, subs := r.frame, r.Subs
	for i := range subs {
		subs[i] = Sub{} // drop value aliases
	}
	*r = Request{frame: frame, Subs: subs[:0]}
}

// NewResponse returns a pooled Response. Release it after encoding (the
// server's write loop) or once its fields are no longer referenced.
func NewResponse() *Response { return responsePool.Get().(*Response) }

// Release resets r (keeping its Value and Subs capacity) and returns it to
// the pool.
func (r *Response) Release() {
	r.reset()
	responsePool.Put(r)
}

func (r *Response) reset() {
	val, subs, entries, frame := r.Value[:0], r.Subs, r.Entries, r.frame
	for i := range subs {
		subs[i] = SubResult{}
	}
	for i := range entries {
		entries[i] = ScanEntry{} // drop value aliases
	}
	*r = Response{Value: val, Subs: subs[:0], Entries: entries[:0], frame: frame}
}

// --- encoding ----------------------------------------------------------

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// beginFrame reserves the 4-byte length prefix in dst; endFrame patches it
// once the payload has been appended in place. Encoding straight into dst
// (instead of building a payload and copying it) keeps AppendRequest and
// AppendResponse allocation-free when dst has capacity.
func beginFrame(dst []byte) (start int, out []byte) {
	return len(dst), append(dst, 0, 0, 0, 0)
}

func endFrame(dst []byte, start int) ([]byte, error) {
	n := len(dst) - start - 4
	if n > MaxFrame {
		return dst[:start], fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrProtocol, n)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// AppendRequest appends r's frame (length prefix included) to dst. It
// allocates nothing when dst has capacity for the frame.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if !r.Op.valid() || r.Op == OpError {
		return dst, fmt.Errorf("%w: bad opcode %v", ErrProtocol, r.Op)
	}
	start, p := beginFrame(dst)
	p = append(p, Version, byte(r.Op))
	p = appendU32(p, r.ID)
	switch r.Op {
	case OpPing:
	case OpGet, OpDelete:
		p = appendU64(p, r.Key)
	case OpPut:
		p = appendU64(p, r.Key)
		p = appendBytes(p, r.Value)
	case OpCAS:
		p = appendU64(p, r.Key)
		p = appendBytes(p, r.OldValue)
		p = appendBytes(p, r.Value)
	case OpAtomic:
		if len(r.Subs) == 0 || len(r.Subs) > MaxAtomicOps {
			return p[:start], fmt.Errorf("%w: atomic batch of %d ops", ErrProtocol, len(r.Subs))
		}
		p = appendU16(p, uint16(len(r.Subs)))
		for _, s := range r.Subs {
			if !s.Kind.valid() {
				return p[:start], fmt.Errorf("%w: bad sub kind %d", ErrProtocol, s.Kind)
			}
			p = append(p, byte(s.Kind))
			p = appendU64(p, s.Key)
			switch s.Kind {
			case SubPut:
				p = appendBytes(p, s.Value)
			case SubAdd:
				p = appendU64(p, s.Delta)
			}
		}
	case OpStats:
		p = appendU32(p, r.Shard)
	case OpScan:
		if r.Limit > MaxScanKeys {
			return p[:start], fmt.Errorf("%w: scan limit %d exceeds MaxScanKeys", ErrProtocol, r.Limit)
		}
		p = appendU64(p, r.Key)
		p = appendU64(p, r.End)
		p = appendU64(p, r.Cursor)
		p = appendU32(p, r.Limit)
		var flags byte
		if r.HasCursor {
			flags |= 1
		}
		p = append(p, flags)
	case OpShardMapGet:
	case OpShardMapWatch:
		p = appendU64(p, r.Key)
	case OpShardMapJoin:
		p = appendBytes(p, r.Value)
	case OpShardMapUpdate:
		p = appendU32(p, r.Shard)
		p = appendU64(p, r.Key)
	case OpReplicate:
		p = appendU32(p, r.Shard)
		p = appendU64(p, r.Key)
		p = appendBytes(p, r.Value)
	case OpHandoff:
		if !r.Phase.valid() {
			return p[:start], fmt.Errorf("%w: bad handoff phase %d", ErrProtocol, r.Phase)
		}
		p = appendU32(p, r.Shard)
		p = append(p, byte(r.Phase))
		p = appendU64(p, r.Key)
		p = appendBytes(p, r.Value)
	}
	return endFrame(p, start)
}

// appendShardMap appends m's encoding: epoch, node list, shard-route list.
func appendShardMap(p []byte, m *ShardMap) ([]byte, error) {
	if len(m.Nodes) > MaxMapNodes {
		return p, fmt.Errorf("%w: shard map with %d nodes", ErrProtocol, len(m.Nodes))
	}
	if len(m.Shards) > MaxMapShards {
		return p, fmt.Errorf("%w: shard map with %d shards", ErrProtocol, len(m.Shards))
	}
	p = appendU64(p, m.Epoch)
	p = appendU16(p, uint16(len(m.Nodes)))
	for _, n := range m.Nodes {
		p = appendU32(p, n.ID)
		if len(n.Addr) > math.MaxUint8 {
			return p, fmt.Errorf("%w: node address too long", ErrProtocol)
		}
		p = append(p, byte(len(n.Addr)))
		p = append(p, n.Addr...)
	}
	p = appendU32(p, uint32(len(m.Shards)))
	for _, r := range m.Shards {
		if len(r.Replicas) > MaxShardReplicas {
			return p, fmt.Errorf("%w: shard route with %d replicas", ErrProtocol, len(r.Replicas))
		}
		p = appendU32(p, r.Shard)
		p = appendU64(p, r.Epoch)
		p = appendU32(p, r.Leader)
		p = append(p, byte(len(r.Replicas)))
		for _, id := range r.Replicas {
			p = appendU32(p, id)
		}
	}
	return p, nil
}

// AppendResponse appends r's frame (length prefix included) to dst. It
// allocates nothing when dst has capacity for the frame.
func AppendResponse(dst []byte, r *Response) ([]byte, error) {
	if !r.Op.valid() {
		return dst, fmt.Errorf("%w: bad opcode %v", ErrProtocol, r.Op)
	}
	start, p := beginFrame(dst)
	p = append(p, Version, byte(r.Op)|respFlag)
	p = appendU32(p, r.ID)
	p = append(p, byte(r.Status))
	if r.Status != StatusOK {
		// Non-OK responses carry only detail bytes (CAS mismatch: the
		// current value; otherwise a human-readable message).
		p = appendBytes(p, r.Value)
		return endFrame(p, start)
	}
	switch r.Op {
	case OpPing, OpDelete, OpCAS, OpError:
	case OpGet:
		p = appendBytes(p, r.Value)
	case OpPut:
		var created byte
		if r.Created {
			created = 1
		}
		p = append(p, created)
	case OpAtomic:
		p = appendU16(p, uint16(len(r.Subs)))
		for _, s := range r.Subs {
			p = append(p, byte(s.Kind), byte(s.Status))
			switch {
			case s.Kind == SubGet && s.Status == StatusOK:
				p = appendBytes(p, s.Value)
			case s.Kind == SubAdd:
				p = appendU64(p, s.Sum)
			}
		}
	case OpScan:
		if len(r.Entries) > MaxScanKeys {
			return p[:start], fmt.Errorf("%w: scan page of %d entries", ErrProtocol, len(r.Entries))
		}
		p = appendU16(p, uint16(len(r.Entries)))
		for _, e := range r.Entries {
			p = appendU64(p, e.Key)
			p = appendBytes(p, e.Value)
		}
		var more byte
		if r.More {
			more = 1
		}
		p = append(p, more)
		p = appendU64(p, r.Cursor)
	case OpStats:
		p = appendU16(p, uint16(len(r.Stats)))
		for _, s := range r.Stats {
			p = appendU32(p, s.Shard)
			if len(s.Engine) > math.MaxUint8 {
				return p[:start], fmt.Errorf("%w: engine name too long", ErrProtocol)
			}
			p = append(p, byte(len(s.Engine)))
			p = append(p, s.Engine...)
			p = appendU32(p, s.Quota)
			p = appendU32(p, s.SettledQuota)
			for _, v := range [...]uint64{
				s.QuotaMoves, s.Commits, s.Aborts, s.Escalations, s.Panics,
				s.SuccessNs, s.AbortNs, math.Float64bits(s.Delta), s.Keys,
				s.QuotaEvents, s.Repartitions,
				s.Groups, s.GroupOps, s.QueueHighWater,
				s.WalAppends, s.WalBytes, s.Fsyncs, s.SnapshotAgeSec,
				s.ReplayedRecords,
				s.CrossShardGroups, s.CrossShardPrepares, s.PrepareAborts,
				s.Scans, s.ScannedKeys,
				s.FollowerAcks, s.ReplicaLagRecords, s.Handoffs,
				s.EffectiveBatch, s.AdmissionRejects, s.RingFullEvents,
				s.QueueHighWaterWin,
			} {
				p = appendU64(p, v)
			}
		}
	case OpShardMapGet, OpShardMapWatch, OpShardMapUpdate:
		var err error
		if p, err = appendShardMap(p, &r.Map); err != nil {
			return p[:start], err
		}
	case OpShardMapJoin:
		p = appendU64(p, r.Cursor)
		var err error
		if p, err = appendShardMap(p, &r.Map); err != nil {
			return p[:start], err
		}
	case OpReplicate, OpHandoff:
		p = appendU64(p, r.Cursor)
	}
	return endFrame(p, start)
}

// WriteRequest writes r as one frame.
func WriteRequest(w io.Writer, r *Request) error {
	b, err := AppendRequest(nil, r)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// WriteResponse writes r as one frame.
func WriteResponse(w io.Writer, r *Response) error {
	b, err := AppendResponse(nil, r)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// --- decoding ----------------------------------------------------------

// cursor walks a payload; the first short read poisons it so parse code can
// decode straight-line and check err once.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() {
	if c.err == nil {
		c.err = fmt.Errorf("%w: truncated payload", ErrProtocol)
	}
}

func (c *cursor) u8() uint8 {
	if c.err != nil || c.off+1 > len(c.b) {
		c.fail()
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil || c.off+2 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil || c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

// bytes decodes a u32 length prefix and returns that many bytes as a
// sub-slice of the payload — no copy, so decoded requests and responses
// borrow the buffer they were parsed from (capped capacity keeps an append
// by the caller from clobbering adjacent payload bytes).
func (c *cursor) bytes() []byte {
	n := int(c.u32())
	if c.err != nil || n > len(c.b)-c.off {
		c.fail()
		return nil
	}
	out := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return out
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrProtocol, len(c.b)-c.off)
	}
	return nil
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean stream end
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrProtocol, n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}

// readFrameReuse reads one length-prefixed payload into buf, growing it
// only when the frame exceeds its capacity.
func readFrameReuse(r io.Reader, buf []byte) ([]byte, error) {
	// The header is read into the retained buffer itself: a local [4]byte
	// would escape through the io.Reader interface, costing an allocation
	// per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 4)
	}
	buf = buf[:4]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf, err // io.EOF passes through for clean stream end
	}
	n := int(binary.LittleEndian.Uint32(buf))
	if n > MaxFrame {
		return buf, fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrProtocol, n)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return buf, err
	}
	return buf, nil
}

// ReadRequest reads and decodes one request frame. io.EOF means the peer
// closed cleanly between frames.
func ReadRequest(r io.Reader) (*Request, error) {
	p, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	req := new(Request)
	if err := req.parse(p); err != nil {
		return nil, err
	}
	return req, nil
}

// ReadRequestReuse reads one request frame into req's retained buffer and
// parses it in place — the allocation-free server read path. req's decoded
// fields borrow that buffer and stay valid until the next ReadRequestReuse
// on req or req.Release.
func ReadRequestReuse(r io.Reader, req *Request) error {
	frame, err := readFrameReuse(r, req.frame)
	req.frame = frame
	if err != nil {
		return err
	}
	return ParseRequestReuse(req, frame)
}

// ParseRequest decodes a request payload (frame length already stripped).
// The returned request borrows p.
func ParseRequest(p []byte) (*Request, error) {
	req := new(Request)
	if err := req.parse(p); err != nil {
		return nil, err
	}
	return req, nil
}

// ParseRequestReuse decodes a request payload into req, reusing its Subs
// capacity. req's byte fields borrow p.
func ParseRequestReuse(req *Request, p []byte) error {
	frame, subs := req.frame, req.Subs[:0]
	*req = Request{frame: frame, Subs: subs}
	if err := req.parse(p); err != nil {
		// Leave no stale borrowed slices behind a parse error.
		req.reset()
		return err
	}
	return nil
}

func (req *Request) parse(p []byte) error {
	c := &cursor{b: p}
	ver := c.u8()
	if c.err == nil && (ver < MinVersion || ver > Version) {
		return fmt.Errorf("%w: version %d", ErrProtocol, ver)
	}
	op := Op(c.u8())
	if c.err == nil && (!op.valid() || op == OpError) {
		return fmt.Errorf("%w: bad opcode %v", ErrProtocol, op)
	}
	if c.err == nil && op == OpScan && ver < 4 {
		return fmt.Errorf("%w: SCAN requires version 4, frame is version %d", ErrProtocol, ver)
	}
	if c.err == nil && op >= OpShardMapGet && op <= OpHandoff && ver < 5 {
		return fmt.Errorf("%w: %v requires version 5, frame is version %d", ErrProtocol, op, ver)
	}
	req.Op, req.ID = op, c.u32()
	switch op {
	case OpPing:
	case OpGet, OpDelete:
		req.Key = c.u64()
	case OpPut:
		req.Key = c.u64()
		req.Value = c.bytes()
	case OpCAS:
		req.Key = c.u64()
		req.OldValue = c.bytes()
		req.Value = c.bytes()
	case OpAtomic:
		n := int(c.u16())
		if c.err == nil && (n == 0 || n > MaxAtomicOps) {
			return fmt.Errorf("%w: atomic batch of %d ops", ErrProtocol, n)
		}
		for i := 0; i < n && c.err == nil; i++ {
			s := Sub{Kind: SubKind(c.u8())}
			if c.err == nil && !s.Kind.valid() {
				return fmt.Errorf("%w: bad sub kind %d", ErrProtocol, s.Kind)
			}
			s.Key = c.u64()
			switch s.Kind {
			case SubPut:
				s.Value = c.bytes()
			case SubAdd:
				s.Delta = c.u64()
			}
			req.Subs = append(req.Subs, s)
		}
	case OpStats:
		req.Shard = c.u32()
	case OpScan:
		req.Key = c.u64()
		req.End = c.u64()
		req.Cursor = c.u64()
		req.Limit = c.u32()
		if c.err == nil && req.Limit > MaxScanKeys {
			return fmt.Errorf("%w: scan limit %d exceeds MaxScanKeys", ErrProtocol, req.Limit)
		}
		// Unknown flag bits are ignored, matching the struct-level round-trip
		// contract of the other boolean fields.
		req.HasCursor = c.u8()&1 == 1
	case OpShardMapGet:
	case OpShardMapWatch:
		req.Key = c.u64()
	case OpShardMapJoin:
		req.Value = c.bytes()
	case OpShardMapUpdate:
		req.Shard = c.u32()
		req.Key = c.u64()
	case OpReplicate:
		req.Shard = c.u32()
		req.Key = c.u64()
		req.Value = c.bytes()
	case OpHandoff:
		req.Shard = c.u32()
		req.Phase = HandoffPhase(c.u8())
		if c.err == nil && !req.Phase.valid() {
			return fmt.Errorf("%w: bad handoff phase %d", ErrProtocol, req.Phase)
		}
		req.Key = c.u64()
		req.Value = c.bytes()
	}
	return c.done()
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader) (*Response, error) {
	p, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	resp := new(Response)
	if err := resp.parse(p); err != nil {
		return nil, err
	}
	return resp, nil
}

// ReadResponseReuse reads one response frame into resp's retained buffer
// and parses it in place — the allocation-free client read path. resp's
// decoded fields borrow that buffer and stay valid until the next
// ReadResponseReuse on resp or resp.Release.
func ReadResponseReuse(r io.Reader, resp *Response) error {
	frame, err := readFrameReuse(r, resp.frame)
	resp.frame = frame
	if err != nil {
		return err
	}
	return ParseResponseReuse(resp, frame)
}

// ParseResponse decodes a response payload (frame length already
// stripped). The returned response borrows p.
func ParseResponse(p []byte) (*Response, error) {
	resp := new(Response)
	if err := resp.parse(p); err != nil {
		return nil, err
	}
	return resp, nil
}

// ParseResponseReuse decodes a response payload into resp, reusing its
// Subs capacity. resp's byte fields borrow p.
func ParseResponseReuse(resp *Response, p []byte) error {
	frame, subs := resp.frame, resp.Subs[:0]
	*resp = Response{frame: frame, Subs: subs}
	if err := resp.parse(p); err != nil {
		resp.reset()
		return err
	}
	return nil
}

func (resp *Response) parse(p []byte) error {
	c := &cursor{b: p}
	ver := c.u8()
	if c.err == nil && (ver < MinVersion || ver > Version) {
		return fmt.Errorf("%w: version %d", ErrProtocol, ver)
	}
	rawOp := c.u8()
	if c.err == nil && rawOp&respFlag == 0 {
		return fmt.Errorf("%w: request opcode in response frame", ErrProtocol)
	}
	op := Op(rawOp &^ respFlag)
	if c.err == nil && !op.valid() {
		return fmt.Errorf("%w: bad opcode %v", ErrProtocol, op)
	}
	if c.err == nil && op == OpScan && ver < 4 {
		return fmt.Errorf("%w: SCAN requires version 4, frame is version %d", ErrProtocol, ver)
	}
	if c.err == nil && op >= OpShardMapGet && op <= OpHandoff && ver < 5 {
		return fmt.Errorf("%w: %v requires version 5, frame is version %d", ErrProtocol, op, ver)
	}
	resp.Op, resp.ID, resp.Status = op, c.u32(), Status(c.u8())
	if resp.Status != StatusOK {
		resp.Value = c.bytes()
		return c.done()
	}
	switch op {
	case OpPing, OpDelete, OpCAS, OpError:
	case OpGet:
		resp.Value = c.bytes()
	case OpPut:
		resp.Created = c.u8() == 1
	case OpAtomic:
		n := int(c.u16())
		if c.err == nil && n > MaxAtomicOps {
			return fmt.Errorf("%w: atomic result of %d ops", ErrProtocol, n)
		}
		for i := 0; i < n && c.err == nil; i++ {
			s := SubResult{Kind: SubKind(c.u8()), Status: Status(c.u8())}
			switch {
			case s.Kind == SubGet && s.Status == StatusOK:
				s.Value = c.bytes()
			case s.Kind == SubAdd:
				s.Sum = c.u64()
			}
			resp.Subs = append(resp.Subs, s)
		}
	case OpScan:
		n := int(c.u16())
		if c.err == nil && n > MaxScanKeys {
			return fmt.Errorf("%w: scan page of %d entries", ErrProtocol, n)
		}
		for i := 0; i < n && c.err == nil; i++ {
			e := ScanEntry{Key: c.u64()}
			e.Value = c.bytes()
			resp.Entries = append(resp.Entries, e)
		}
		resp.More = c.u8() == 1
		resp.Cursor = c.u64()
	case OpStats:
		n := int(c.u16())
		for i := 0; i < n && c.err == nil; i++ {
			var s ShardStats
			s.Shard = c.u32()
			nameLen := int(c.u8())
			if c.err == nil && nameLen > len(c.b)-c.off {
				c.fail()
			} else if c.err == nil {
				s.Engine = string(c.b[c.off : c.off+nameLen])
				c.off += nameLen
			}
			s.Quota = c.u32()
			s.SettledQuota = c.u32()
			s.QuotaMoves = c.u64()
			s.Commits = c.u64()
			s.Aborts = c.u64()
			s.Escalations = c.u64()
			s.Panics = c.u64()
			s.SuccessNs = c.u64()
			s.AbortNs = c.u64()
			s.Delta = math.Float64frombits(c.u64())
			s.Keys = c.u64()
			s.QuotaEvents = c.u64()
			s.Repartitions = c.u64()
			s.Groups = c.u64()
			s.GroupOps = c.u64()
			s.QueueHighWater = c.u64()
			if ver >= 2 {
				s.WalAppends = c.u64()
				s.WalBytes = c.u64()
				s.Fsyncs = c.u64()
				s.SnapshotAgeSec = c.u64()
				s.ReplayedRecords = c.u64()
			}
			if ver >= 3 {
				s.CrossShardGroups = c.u64()
				s.CrossShardPrepares = c.u64()
				s.PrepareAborts = c.u64()
			}
			if ver >= 4 {
				s.Scans = c.u64()
				s.ScannedKeys = c.u64()
			}
			if ver >= 5 {
				s.FollowerAcks = c.u64()
				s.ReplicaLagRecords = c.u64()
				s.Handoffs = c.u64()
			}
			if ver >= 6 {
				s.EffectiveBatch = c.u64()
				s.AdmissionRejects = c.u64()
				s.RingFullEvents = c.u64()
				s.QueueHighWaterWin = c.u64()
			}
			resp.Stats = append(resp.Stats, s)
		}
	case OpShardMapGet, OpShardMapWatch, OpShardMapUpdate:
		c.shardMap(&resp.Map)
	case OpShardMapJoin:
		resp.Cursor = c.u64()
		c.shardMap(&resp.Map)
	case OpReplicate, OpHandoff:
		resp.Cursor = c.u64()
	}
	return c.done()
}

// shardMap decodes a ShardMap, copying addresses and replica lists so the
// result owns its memory (the control plane is off the pooled hot path).
func (c *cursor) shardMap(m *ShardMap) {
	m.Epoch = c.u64()
	nn := int(c.u16())
	if c.err == nil && nn > MaxMapNodes {
		c.err = fmt.Errorf("%w: shard map with %d nodes", ErrProtocol, nn)
		return
	}
	for i := 0; i < nn && c.err == nil; i++ {
		n := NodeInfo{ID: c.u32()}
		addrLen := int(c.u8())
		if c.err == nil && addrLen > len(c.b)-c.off {
			c.fail()
			return
		}
		if c.err == nil {
			n.Addr = string(c.b[c.off : c.off+addrLen])
			c.off += addrLen
		}
		m.Nodes = append(m.Nodes, n)
	}
	ns := int(c.u32())
	if c.err == nil && ns > MaxMapShards {
		c.err = fmt.Errorf("%w: shard map with %d shards", ErrProtocol, ns)
		return
	}
	for i := 0; i < ns && c.err == nil; i++ {
		r := ShardRoute{Shard: c.u32(), Epoch: c.u64(), Leader: c.u32()}
		nr := int(c.u8())
		if c.err == nil && nr > MaxShardReplicas {
			c.err = fmt.Errorf("%w: shard route with %d replicas", ErrProtocol, nr)
			return
		}
		for j := 0; j < nr && c.err == nil; j++ {
			r.Replicas = append(r.Replicas, c.u32())
		}
		m.Shards = append(m.Shards, r)
	}
}
