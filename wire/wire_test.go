package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("write %v: %v", req.Op, err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", req.Op, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%v: %d bytes left after read", req.Op, buf.Len())
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing, ID: 1},
		{Op: OpGet, ID: 2, Key: 0xdeadbeef},
		{Op: OpPut, ID: 3, Key: 7, Value: []byte("hello")},
		{Op: OpPut, ID: 4, Key: 8, Value: []byte{}},
		{Op: OpDelete, ID: 5, Key: ^uint64(0)},
		{Op: OpCAS, ID: 6, Key: 9, OldValue: []byte("old"), Value: []byte("new")},
		{Op: OpAtomic, ID: 7, Subs: []Sub{
			{Kind: SubGet, Key: 1},
			{Kind: SubPut, Key: 2, Value: []byte("v")},
			{Kind: SubDelete, Key: 3},
			{Kind: SubAdd, Key: 4, Delta: 42},
		}},
		// Multi-shard ATOMIC: keys spread across the whole hash space. The
		// frame layout is identical to the single-shard case — shard
		// placement is a server concern — but since protocol v3 such batches
		// are served rather than rejected, so they must round-trip cleanly.
		{Op: OpAtomic, ID: 10, Subs: []Sub{
			{Kind: SubPut, Key: 0, Value: []byte("shard-a")},
			{Kind: SubPut, Key: ^uint64(0), Value: []byte("shard-b")},
			{Kind: SubAdd, Key: 0x8000_0000_0000_0000, Delta: ^uint64(6)},
			{Kind: SubGet, Key: 0x1234_5678_9abc_def0},
			{Kind: SubDelete, Key: 0xcafe_babe},
		}},
		{Op: OpStats, ID: 8, Shard: AllShards},
		{Op: OpStats, ID: 9, Shard: 3},
		// SCAN (v4): first page, continuation page, and the degenerate
		// shapes the framing layer deliberately lets through — limit 0,
		// empty and reversed ranges, a cursor past the end — which the
		// server answers with BAD_REQUEST instead of dropping the stream.
		{Op: OpScan, ID: 11, Key: 100, End: 200, Limit: 64},
		{Op: OpScan, ID: 12, Key: 100, End: 200, Limit: MaxScanKeys, Cursor: 150, HasCursor: true},
		{Op: OpScan, ID: 13, Key: 0, End: ^uint64(0), Limit: 1},
		{Op: OpScan, ID: 14, Key: 5, End: 9, Limit: 0},
		{Op: OpScan, ID: 15, Key: 7, End: 7, Limit: 8},
		{Op: OpScan, ID: 16, Key: 9, End: 5, Limit: 8},
		{Op: OpScan, ID: 17, Key: 5, End: 9, Limit: 8, Cursor: 1000, HasCursor: true},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		// Empty slices decode as nil; normalize before comparing.
		if len(req.Value) == 0 {
			req.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

func roundTripResponse(t *testing.T, resp *Response) *Response {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatalf("write %v: %v", resp.Op, err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", resp.Op, err)
	}
	return got
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Op: OpPing, ID: 1},
		{Op: OpGet, ID: 2, Value: []byte("payload")},
		{Op: OpGet, ID: 3, Status: StatusNotFound, Value: []byte("detail")},
		{Op: OpPut, ID: 4, Created: true},
		{Op: OpPut, ID: 5, Created: false},
		{Op: OpDelete, ID: 6},
		{Op: OpCAS, ID: 7, Status: StatusCASMismatch, Value: []byte("current")},
		{Op: OpAtomic, ID: 8, Subs: []SubResult{
			{Kind: SubGet, Status: StatusOK, Value: []byte("x")},
			{Kind: SubGet, Status: StatusNotFound},
			{Kind: SubPut, Status: StatusOK},
			{Kind: SubAdd, Status: StatusOK, Sum: 99},
		}},
		{Op: OpAtomic, ID: 9, Status: StatusBusy},
		{Op: OpStats, ID: 10, Stats: []ShardStats{{
			Shard: 0, Engine: "norec", Quota: 4, SettledQuota: 2,
			QuotaMoves: 5, Commits: 100, Aborts: 10, Escalations: 1,
			Panics: 2, SuccessNs: 12345, AbortNs: 678, Delta: 0.25,
			Keys: 50, QuotaEvents: 5, Repartitions: 3,
		}}},
		{Op: OpStats, ID: 11, Stats: []ShardStats{{
			Shard: 1, Engine: "tl2", Quota: 8, SettledQuota: 8,
			Commits: 7, Delta: 0.5, Keys: 3,
			Groups: 4, GroupOps: 64, QueueHighWater: 16,
			WalAppends: 4, WalBytes: 4096, Fsyncs: 3,
			SnapshotAgeSec: 17, ReplayedRecords: 1000,
		}}},
		{Op: OpStats, ID: 12, Stats: []ShardStats{{
			Engine: "norec", SnapshotAgeSec: SnapshotNever,
		}}},
		// v3 STATS: the cross-shard 2PC meters must survive the round trip.
		{Op: OpStats, ID: 13, Stats: []ShardStats{{
			Shard: 2, Engine: "norec", Quota: 2, Commits: 11,
			WalAppends: 5, Fsyncs: 2,
			CrossShardGroups: 3, CrossShardPrepares: 6, PrepareAborts: 1,
		}}},
		// v6 STATS: the adaptive-batching meters must survive the round trip.
		{Op: OpStats, ID: 20, Stats: []ShardStats{{
			Shard: 3, Engine: "oreceager", Quota: 4, Commits: 21,
			Groups: 2, GroupOps: 18, QueueHighWater: 40,
			FollowerAcks: 8, ReplicaLagRecords: 1, Handoffs: 2,
			EffectiveBatch: 8, AdmissionRejects: 17,
			RingFullEvents: 3, QueueHighWaterWin: 12,
		}}},
		// A cross-shard batch that lost the routing race against a live
		// repartition: BUSY with the server's detail, no sub results.
		{Op: OpAtomic, ID: 14, Status: StatusBusy,
			Value: []byte("server: batch keys moved by a concurrent repartition")},
		// SCAN pages (v4): a final page, a continuation page with a cursor,
		// an empty page, and the typed rejections a server answers for
		// semantically invalid ranges.
		{Op: OpScan, ID: 15, Entries: []ScanEntry{
			{Key: 1, Value: []byte("a")},
			{Key: 2, Value: []byte{}},
			{Key: 9, Value: []byte("long-ish value bytes")},
		}},
		{Op: OpScan, ID: 16, Entries: []ScanEntry{{Key: 5, Value: []byte("x")}},
			More: true, Cursor: 6},
		{Op: OpScan, ID: 17},
		{Op: OpScan, ID: 18, Status: StatusBadRequest, Value: []byte("scan limit must be positive")},
		{Op: OpScan, ID: 19, Status: StatusBusy},
	}
	for _, resp := range resps {
		got := roundTripResponse(t, resp)
		if len(resp.Value) == 0 {
			resp.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(resp, got) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", resp.Op, got, resp)
		}
	}
}

func TestStatsNaNDelta(t *testing.T) {
	resp := roundTripResponse(t, &Response{
		Op: OpStats, ID: 1,
		Stats: []ShardStats{{Engine: "tl2", Delta: math.NaN()}},
	})
	if !math.IsNaN(resp.Stats[0].Delta) {
		t.Errorf("NaN delta decoded as %v", resp.Stats[0].Delta)
	}
}

// TestOldVersionRequestDecode: version-1 request frames have the identical
// layout and must keep parsing after the version-2 bump.
func TestOldVersionRequestDecode(t *testing.T) {
	reqs := []*Request{
		{Op: OpGet, ID: 2, Key: 0xdeadbeef},
		{Op: OpPut, ID: 3, Key: 7, Value: []byte("hello")},
		{Op: OpAtomic, ID: 7, Subs: []Sub{{Kind: SubAdd, Key: 4, Delta: 42}}},
		{Op: OpStats, ID: 8, Shard: AllShards},
	}
	for _, req := range reqs {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		frame[4] = 1 // downgrade the version byte; the layout is unchanged
		got, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v as v1: %v", req.Op, err)
		}
		if len(req.Value) == 0 {
			req.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Errorf("%v as v1:\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

// TestOldVersionStatsDecode: a version-1 STATS response (no durability or
// cross-shard fields) must decode with those fields zero.
func TestOldVersionStatsDecode(t *testing.T) {
	want := ShardStats{
		Shard: 2, Engine: "norec", Quota: 4, SettledQuota: 2,
		QuotaMoves: 5, Commits: 100, Aborts: 10, Escalations: 1,
		Panics: 2, SuccessNs: 12345, AbortNs: 678, Delta: 0.25,
		Keys: 50, QuotaEvents: 5, Repartitions: 3,
		Groups: 6, GroupOps: 60, QueueHighWater: 12,
	}
	stamped := want
	stamped.WalAppends, stamped.WalBytes, stamped.Fsyncs = 9, 999, 9
	stamped.SnapshotAgeSec, stamped.ReplayedRecords = 3, 33
	stamped.CrossShardGroups, stamped.CrossShardPrepares, stamped.PrepareAborts = 7, 14, 1
	stamped.Scans, stamped.ScannedKeys = 21, 2100
	stamped.FollowerAcks, stamped.ReplicaLagRecords, stamped.Handoffs = 11, 2, 1
	stamped.EffectiveBatch, stamped.AdmissionRejects = 8, 4
	stamped.RingFullEvents, stamped.QueueHighWaterWin = 2, 6
	frame, err := AppendResponse(nil, &Response{Op: OpStats, ID: 1, Stats: []ShardStats{stamped}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v6 frame as its v1 equivalent: drop the five durability,
	// three cross-shard, two scan, three replication and four adaptive-
	// batching trailing u64s, then downgrade the version byte.
	const v1Trailing = (5 + 3 + 2 + 3 + 4) * 8
	frame = frame[:len(frame)-v1Trailing]
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame[4] = 1
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v1 STATS decode: %v", err)
	}
	if len(got.Stats) != 1 || !reflect.DeepEqual(got.Stats[0], want) {
		t.Errorf("v1 STATS decode:\n got %+v\nwant %+v", got.Stats, want)
	}
}

// TestV2StatsDecode: a version-2 STATS response carries the durability fields
// but predates the cross-shard 2PC meters; those must decode as zero.
func TestV2StatsDecode(t *testing.T) {
	want := ShardStats{
		Shard: 1, Engine: "tl2", Quota: 8, Commits: 40, Delta: 0.5,
		Keys: 9, Groups: 2, GroupOps: 17, QueueHighWater: 3,
		WalAppends: 9, WalBytes: 999, Fsyncs: 9,
		SnapshotAgeSec: 3, ReplayedRecords: 33,
	}
	stamped := want
	stamped.CrossShardGroups, stamped.CrossShardPrepares, stamped.PrepareAborts = 4, 8, 2
	stamped.Scans, stamped.ScannedKeys = 5, 500
	stamped.FollowerAcks, stamped.ReplicaLagRecords, stamped.Handoffs = 7, 3, 2
	stamped.EffectiveBatch, stamped.AdmissionRejects = 16, 9
	stamped.RingFullEvents, stamped.QueueHighWaterWin = 5, 2
	frame, err := AppendResponse(nil, &Response{Op: OpStats, ID: 2, Stats: []ShardStats{stamped}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v6 frame as its v2 equivalent: drop the three cross-shard,
	// two scan, three replication and four adaptive-batching trailing u64s,
	// then downgrade the version byte.
	const xsBytes = (3 + 2 + 3 + 4) * 8
	frame = frame[:len(frame)-xsBytes]
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame[4] = 2
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v2 STATS decode: %v", err)
	}
	if len(got.Stats) != 1 || !reflect.DeepEqual(got.Stats[0], want) {
		t.Errorf("v2 STATS decode:\n got %+v\nwant %+v", got.Stats, want)
	}
}

// TestV3StatsDecode: a version-3 STATS response carries the cross-shard 2PC
// meters but predates the scan meters; those must decode as zero.
func TestV3StatsDecode(t *testing.T) {
	want := ShardStats{
		Shard: 3, Engine: "norec", Quota: 2, Commits: 15, Delta: 0.75,
		Keys: 4, Groups: 3, GroupOps: 21, QueueHighWater: 5,
		WalAppends: 2, WalBytes: 256, Fsyncs: 1,
		SnapshotAgeSec: 9, ReplayedRecords: 12,
		CrossShardGroups: 4, CrossShardPrepares: 8, PrepareAborts: 2,
	}
	stamped := want
	stamped.Scans, stamped.ScannedKeys = 6, 600
	stamped.FollowerAcks, stamped.ReplicaLagRecords, stamped.Handoffs = 9, 1, 3
	stamped.EffectiveBatch, stamped.AdmissionRejects = 4, 1
	stamped.RingFullEvents, stamped.QueueHighWaterWin = 7, 3
	frame, err := AppendResponse(nil, &Response{Op: OpStats, ID: 3, Stats: []ShardStats{stamped}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v6 frame as its v3 equivalent: drop the two scan, three
	// replication and four adaptive-batching trailing u64s and downgrade the
	// version byte.
	const scanBytes = (2 + 3 + 4) * 8
	frame = frame[:len(frame)-scanBytes]
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame[4] = 3
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v3 STATS decode: %v", err)
	}
	if len(got.Stats) != 1 || !reflect.DeepEqual(got.Stats[0], want) {
		t.Errorf("v3 STATS decode:\n got %+v\nwant %+v", got.Stats, want)
	}
}

// TestV4StatsDecode: a version-4 STATS response carries the scan meters but
// predates the replication meters; those must decode as zero.
func TestV4StatsDecode(t *testing.T) {
	want := ShardStats{
		Shard: 5, Engine: "tl2", Quota: 3, Commits: 27, Delta: 0.125,
		Keys: 8, Groups: 4, GroupOps: 19, QueueHighWater: 6,
		WalAppends: 3, WalBytes: 128, Fsyncs: 2,
		SnapshotAgeSec: 4, ReplayedRecords: 7,
		CrossShardGroups: 2, CrossShardPrepares: 4, PrepareAborts: 1,
		Scans: 11, ScannedKeys: 1100,
	}
	stamped := want
	stamped.FollowerAcks, stamped.ReplicaLagRecords, stamped.Handoffs = 42, 5, 2
	stamped.EffectiveBatch, stamped.AdmissionRejects = 2, 3
	stamped.RingFullEvents, stamped.QueueHighWaterWin = 1, 4
	frame, err := AppendResponse(nil, &Response{Op: OpStats, ID: 4, Stats: []ShardStats{stamped}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v6 frame as its v4 equivalent: drop the three replication
	// and four adaptive-batching trailing u64s and downgrade the version byte.
	const replBytes = (3 + 4) * 8
	frame = frame[:len(frame)-replBytes]
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame[4] = 4
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v4 STATS decode: %v", err)
	}
	if len(got.Stats) != 1 || !reflect.DeepEqual(got.Stats[0], want) {
		t.Errorf("v4 STATS decode:\n got %+v\nwant %+v", got.Stats, want)
	}
}

// TestV5StatsDecode: a version-5 STATS response carries the replication
// meters but predates the adaptive-batching meters; those must decode as
// zero.
func TestV5StatsDecode(t *testing.T) {
	want := ShardStats{
		Shard: 6, Engine: "oreceager", Quota: 4, Commits: 33, Delta: 0.5,
		Keys: 12, Groups: 5, GroupOps: 25, QueueHighWater: 9,
		WalAppends: 6, WalBytes: 512, Fsyncs: 3,
		SnapshotAgeSec: 2, ReplayedRecords: 1,
		CrossShardGroups: 1, CrossShardPrepares: 2, PrepareAborts: 0,
		Scans: 3, ScannedKeys: 300,
		FollowerAcks: 17, ReplicaLagRecords: 4, Handoffs: 1,
	}
	stamped := want
	stamped.EffectiveBatch, stamped.AdmissionRejects = 16, 21
	stamped.RingFullEvents, stamped.QueueHighWaterWin = 8, 11
	frame, err := AppendResponse(nil, &Response{Op: OpStats, ID: 5, Stats: []ShardStats{stamped}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v6 frame as its v5 equivalent: drop the four trailing
	// adaptive-batching u64s and downgrade the version byte.
	const adaptBytes = 4 * 8
	frame = frame[:len(frame)-adaptBytes]
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame[4] = 5
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v5 STATS decode: %v", err)
	}
	if len(got.Stats) != 1 || !reflect.DeepEqual(got.Stats[0], want) {
		t.Errorf("v5 STATS decode:\n got %+v\nwant %+v", got.Stats, want)
	}
}

func TestTypedErrors(t *testing.T) {
	err := StatusBusy.Err(nil)
	if !errors.Is(err, ErrBusy) {
		t.Errorf("StatusBusy error does not match ErrBusy")
	}
	if errors.Is(err, ErrNotFound) {
		t.Errorf("StatusBusy error matches ErrNotFound")
	}
	if StatusOK.Err(nil) != nil {
		t.Errorf("StatusOK produced an error")
	}
	mismatch := StatusCASMismatch.Err([]byte("current"))
	var werr *Error
	if !errors.As(mismatch, &werr) || string(werr.Detail) != "current" {
		t.Errorf("CAS mismatch detail lost: %v", mismatch)
	}
}

func TestFramingViolations(t *testing.T) {
	// Oversized frame header.
	big := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadRequest(bytes.NewReader(big)); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized frame: got %v, want ErrProtocol", err)
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpGet, ID: 1, Key: 2}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadRequest(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame parsed")
	}
	// Wrong version byte.
	frame, err := AppendRequest(nil, &Request{Op: OpPing, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = 99 // version byte follows the 4-byte length
	if _, err := ReadRequest(bytes.NewReader(frame)); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad version: got %v, want ErrProtocol", err)
	}
	// Clean EOF between frames.
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	// Response opcode without the response flag.
	respFrame, err := AppendResponse(nil, &Response{Op: OpPing, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	respFrame[5] &^= 0x80
	if _, err := ReadResponse(bytes.NewReader(respFrame)); !errors.Is(err, ErrProtocol) {
		t.Errorf("unflagged response: got %v, want ErrProtocol", err)
	}
	// A frame that claims version 3 but is cut short of the cross-shard
	// meters must be rejected, not misread as a v2 layout.
	statsFrame, err := AppendResponse(nil, &Response{
		Op: OpStats, ID: 2,
		Stats: []ShardStats{{Engine: "norec", CrossShardGroups: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	short := statsFrame[:len(statsFrame)-8]
	binary.LittleEndian.PutUint32(short, uint32(len(short)-4))
	if _, err := ReadResponse(bytes.NewReader(short)); !errors.Is(err, ErrProtocol) {
		t.Errorf("short v3 STATS: got %v, want ErrProtocol", err)
	}
}

// TestAtomicBatchLimit: a batch of exactly MaxAtomicOps subs round-trips;
// one more is rejected by both the encoder and the parser, whatever shards
// the keys map to.
func TestAtomicBatchLimit(t *testing.T) {
	subs := make([]Sub, MaxAtomicOps)
	for i := range subs {
		subs[i] = Sub{Kind: SubAdd, Key: uint64(i) * 0x9e3779b97f4a7c15, Delta: 1}
	}
	got := roundTripRequest(t, &Request{Op: OpAtomic, ID: 1, Subs: subs})
	if len(got.Subs) != MaxAtomicOps {
		t.Fatalf("round trip kept %d subs, want %d", len(got.Subs), MaxAtomicOps)
	}

	over := append(subs, Sub{Kind: SubGet, Key: 1})
	if _, err := AppendRequest(nil, &Request{Op: OpAtomic, ID: 2, Subs: over}); !errors.Is(err, ErrProtocol) {
		t.Errorf("encode %d subs: got %v, want ErrProtocol", len(over), err)
	}
	// Hand-craft the oversized count so the parser sees it too: patch the
	// sub count u16 in a legal frame.
	frame, err := AppendRequest(nil, &Request{Op: OpAtomic, ID: 3, Subs: subs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: len u32 | ver | op | id u32 | count u16 | subs...
	binary.LittleEndian.PutUint16(frame[10:], MaxAtomicOps+1)
	if _, err := ParseRequest(frame[4:]); !errors.Is(err, ErrProtocol) {
		t.Errorf("parse count=%d: got %v, want ErrProtocol", MaxAtomicOps+1, err)
	}
}

// TestScanLimitBound: a SCAN requesting exactly MaxScanKeys round-trips; a
// larger limit is rejected by both the encoder and the parser, and an
// oversized response page count is rejected too.
func TestScanLimitBound(t *testing.T) {
	got := roundTripRequest(t, &Request{Op: OpScan, ID: 1, Key: 0, End: 10, Limit: MaxScanKeys})
	if got.Limit != MaxScanKeys {
		t.Fatalf("round trip kept limit %d, want %d", got.Limit, MaxScanKeys)
	}
	if _, err := AppendRequest(nil, &Request{Op: OpScan, ID: 2, End: 10, Limit: MaxScanKeys + 1}); !errors.Is(err, ErrProtocol) {
		t.Errorf("encode limit %d: got %v, want ErrProtocol", MaxScanKeys+1, err)
	}
	// Patch the limit in a legal frame so the parser sees the oversize.
	frame, err := AppendRequest(nil, &Request{Op: OpScan, ID: 3, End: 10, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: len u32 | ver | op | id u32 | key u64 | end u64 | cursor u64 | limit u32 | flags u8
	binary.LittleEndian.PutUint32(frame[34:], MaxScanKeys+1)
	if _, err := ParseRequest(frame[4:]); !errors.Is(err, ErrProtocol) {
		t.Errorf("parse limit=%d: got %v, want ErrProtocol", MaxScanKeys+1, err)
	}
	// Response page count beyond the bound.
	respFrame, err := AppendResponse(nil, &Response{Op: OpScan, ID: 4,
		Entries: []ScanEntry{{Key: 1, Value: []byte("v")}}})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: len u32 | ver | op|0x80 | id u32 | status | count u16 | ...
	binary.LittleEndian.PutUint16(respFrame[11:], MaxScanKeys+1)
	if _, err := ParseResponse(respFrame[4:]); !errors.Is(err, ErrProtocol) {
		t.Errorf("parse page count=%d: got %v, want ErrProtocol", MaxScanKeys+1, err)
	}
}

// TestScanVersionGate: OpScan frames stamped with a pre-v4 version byte are
// protocol violations in both directions.
func TestScanVersionGate(t *testing.T) {
	frame, err := AppendRequest(nil, &Request{Op: OpScan, ID: 1, End: 10, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = 3
	if _, err := ReadRequest(bytes.NewReader(frame)); !errors.Is(err, ErrProtocol) {
		t.Errorf("v3 SCAN request: got %v, want ErrProtocol", err)
	}
	respFrame, err := AppendResponse(nil, &Response{Op: OpScan, ID: 2})
	if err != nil {
		t.Fatal(err)
	}
	respFrame[4] = 3
	if _, err := ReadResponse(bytes.NewReader(respFrame)); !errors.Is(err, ErrProtocol) {
		t.Errorf("v3 SCAN response: got %v, want ErrProtocol", err)
	}
}

// TestScanTruncation: SCAN frames cut mid-entry or missing the trailing
// cursor fail typed, never panic or misparse.
func TestScanTruncation(t *testing.T) {
	respFrame, err := AppendResponse(nil, &Response{Op: OpScan, ID: 1,
		Entries: []ScanEntry{{Key: 7, Value: []byte("payload")}}, More: true, Cursor: 8})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(respFrame)-4; cut++ {
		short := append([]byte(nil), respFrame[:len(respFrame)-cut]...)
		binary.LittleEndian.PutUint32(short, uint32(len(short)-4))
		if _, err := ParseResponse(short[4:]); err == nil {
			t.Fatalf("truncated SCAN response (cut %d bytes) parsed", cut)
		}
	}
	reqFrame, err := AppendRequest(nil, &Request{Op: OpScan, ID: 2, Key: 1, End: 9, Limit: 4})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(reqFrame)-4; cut++ {
		short := append([]byte(nil), reqFrame[:len(reqFrame)-cut]...)
		binary.LittleEndian.PutUint32(short, uint32(len(short)-4))
		if _, err := ParseRequest(short[4:]); err == nil {
			t.Fatalf("truncated SCAN request (cut %d bytes) parsed", cut)
		}
	}
}

// FuzzParseRequest asserts the request parser never panics and never
// accepts trailing garbage.
func FuzzParseRequest(f *testing.F) {
	seed := []*Request{
		{Op: OpPing, ID: 1},
		{Op: OpPut, ID: 2, Key: 3, Value: []byte("abc")},
		{Op: OpCAS, ID: 3, Key: 4, OldValue: []byte("o"), Value: []byte("n")},
		{Op: OpAtomic, ID: 4, Subs: []Sub{{Kind: SubAdd, Key: 1, Delta: 2}}},
		{Op: OpStats, ID: 5, Shard: AllShards},
		// Multi-shard ATOMIC (served since v3): keys at the extremes of the
		// hash space plus a mixed read/write/counter body.
		{Op: OpAtomic, ID: 6, Subs: []Sub{
			{Kind: SubPut, Key: 0, Value: []byte("lo")},
			{Kind: SubPut, Key: ^uint64(0), Value: []byte("hi")},
			{Kind: SubAdd, Key: 0x8000_0000_0000_0000, Delta: ^uint64(0)},
			{Kind: SubGet, Key: 0x9e3779b97f4a7c15},
			{Kind: SubDelete, Key: 7},
		}},
		// SCAN (v4): a plain page request, a continuation, and the
		// degenerate ranges the server rejects semantically.
		{Op: OpScan, ID: 7, Key: 10, End: 20, Limit: 8},
		{Op: OpScan, ID: 8, Key: 0, End: ^uint64(0), Limit: MaxScanKeys, Cursor: 0x9e37, HasCursor: true},
		{Op: OpScan, ID: 9, Key: 9, End: 5, Limit: 0},
		// Cluster control plane (v5): map fetch/watch/join, a replication
		// batch, and each handoff phase.
		{Op: OpShardMapGet, ID: 10},
		{Op: OpShardMapWatch, ID: 11, Key: 6},
		{Op: OpShardMapJoin, ID: 12, Value: []byte("127.0.0.1:7422")},
		{Op: OpShardMapUpdate, ID: 13, Shard: 2, Key: 3},
		{Op: OpReplicate, ID: 14, Shard: 1, Key: 7, Value: []byte("frames")},
		{Op: OpHandoff, ID: 15, Shard: 3, Phase: HandoffBegin, Key: 40},
		{Op: OpHandoff, ID: 16, Shard: 3, Phase: HandoffEntries, Value: []byte("chunk")},
		{Op: OpHandoff, ID: 17, Shard: 3, Phase: HandoffCommit, Key: 9},
	}
	for _, req := range seed {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:]) // payload without the length prefix
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := ParseRequest(payload)
		if err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse identically.
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("reencode of parsed request failed: %v", err)
		}
		again, err := ParseRequest(frame[4:])
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("parse/encode not stable:\n%+v\n%+v", req, again)
		}
	})
}

// FuzzParseResponse asserts the response parser never panics, and that
// whatever it accepts re-encodes at the current version and re-parses to the
// same value. Seeds cover the v3 additions: cross-shard STATS meters and
// multi-sub ATOMIC results with per-sub statuses.
func FuzzParseResponse(f *testing.F) {
	seed := []*Response{
		{Op: OpPing, ID: 1},
		{Op: OpGet, ID: 2, Value: []byte("payload")},
		{Op: OpAtomic, ID: 3, Subs: []SubResult{
			{Kind: SubGet, Status: StatusOK, Value: []byte("x")},
			{Kind: SubGet, Status: StatusNotFound},
			{Kind: SubAdd, Status: StatusOK, Sum: ^uint64(8)},
		}},
		{Op: OpAtomic, ID: 4, Status: StatusBusy,
			Value: []byte("server: batch keys moved by a concurrent repartition")},
		{Op: OpStats, ID: 5, Stats: []ShardStats{{
			Shard: 1, Engine: "norec", Quota: 4, Commits: 10, Delta: 0.5,
			WalAppends: 3, WalBytes: 300, Fsyncs: 2,
			SnapshotAgeSec: SnapshotNever, ReplayedRecords: 7,
			CrossShardGroups: 2, CrossShardPrepares: 4, PrepareAborts: 1,
		}}},
		{Op: OpError, ID: 0, Status: StatusBadRequest, Value: []byte("bad")},
		// SCAN pages (v4): entries + continuation cursor, and a typed range
		// rejection.
		{Op: OpScan, ID: 6, Entries: []ScanEntry{
			{Key: 1, Value: []byte("a")},
			{Key: 2, Value: []byte("bb")},
		}, More: true, Cursor: 3},
		{Op: OpScan, ID: 7, Status: StatusBadRequest, Value: []byte("reversed scan bounds")},
		// Cluster (v5): a shard map with replicas, a replication cursor,
		// and the epoch-stamped WRONG_SHARD redirect.
		{Op: OpShardMapGet, ID: 8, Map: ShardMap{
			Epoch:  5,
			Nodes:  []NodeInfo{{ID: 1, Addr: "127.0.0.1:7421"}, {ID: 2, Addr: "127.0.0.1:7422"}},
			Shards: []ShardRoute{{Shard: 0, Epoch: 5, Leader: 1, Replicas: []uint32{2}}},
		}},
		{Op: OpShardMapJoin, ID: 9, Cursor: 2, Map: ShardMap{Epoch: 2, Nodes: []NodeInfo{{ID: 1, Addr: "a"}}}},
		{Op: OpReplicate, ID: 10, Cursor: 33},
		{Op: OpPut, ID: 11, Status: StatusWrongShard, Value: WrongShardDetail(nil, 6)},
	}
	for _, resp := range seed {
		frame, err := AppendResponse(nil, resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:]) // payload without the length prefix
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := ParseResponse(payload)
		if err != nil {
			return
		}
		frame, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("reencode of parsed response failed: %v", err)
		}
		again, err := ParseResponse(frame[4:])
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !respEqual(resp, again) {
			t.Fatalf("parse/encode not stable:\n%+v\n%+v", resp, again)
		}
	})
}

// respEqual compares responses treating NaN deltas as equal to themselves
// (reflect.DeepEqual would reject NaN == NaN) and nil/empty byte slices as
// interchangeable.
func respEqual(a, b *Response) bool {
	if len(a.Stats) != len(b.Stats) {
		return false
	}
	for i := range a.Stats {
		da, db := a.Stats[i].Delta, b.Stats[i].Delta
		if math.IsNaN(da) != math.IsNaN(db) {
			return false
		}
		if math.IsNaN(da) {
			a.Stats[i].Delta, b.Stats[i].Delta = 0, 0
		}
	}
	if len(a.Value) == 0 && len(b.Value) == 0 {
		a.Value, b.Value = nil, nil
	}
	return reflect.DeepEqual(a, b)
}
