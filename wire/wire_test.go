package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

func roundTripRequest(t *testing.T, req *Request) *Request {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatalf("write %v: %v", req.Op, err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", req.Op, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%v: %d bytes left after read", req.Op, buf.Len())
	}
	return got
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpPing, ID: 1},
		{Op: OpGet, ID: 2, Key: 0xdeadbeef},
		{Op: OpPut, ID: 3, Key: 7, Value: []byte("hello")},
		{Op: OpPut, ID: 4, Key: 8, Value: []byte{}},
		{Op: OpDelete, ID: 5, Key: ^uint64(0)},
		{Op: OpCAS, ID: 6, Key: 9, OldValue: []byte("old"), Value: []byte("new")},
		{Op: OpAtomic, ID: 7, Subs: []Sub{
			{Kind: SubGet, Key: 1},
			{Kind: SubPut, Key: 2, Value: []byte("v")},
			{Kind: SubDelete, Key: 3},
			{Kind: SubAdd, Key: 4, Delta: 42},
		}},
		{Op: OpStats, ID: 8, Shard: AllShards},
		{Op: OpStats, ID: 9, Shard: 3},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		// Empty slices decode as nil; normalize before comparing.
		if len(req.Value) == 0 {
			req.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

func roundTripResponse(t *testing.T, resp *Response) *Response {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatalf("write %v: %v", resp.Op, err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatalf("read %v: %v", resp.Op, err)
	}
	return got
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{Op: OpPing, ID: 1},
		{Op: OpGet, ID: 2, Value: []byte("payload")},
		{Op: OpGet, ID: 3, Status: StatusNotFound, Value: []byte("detail")},
		{Op: OpPut, ID: 4, Created: true},
		{Op: OpPut, ID: 5, Created: false},
		{Op: OpDelete, ID: 6},
		{Op: OpCAS, ID: 7, Status: StatusCASMismatch, Value: []byte("current")},
		{Op: OpAtomic, ID: 8, Subs: []SubResult{
			{Kind: SubGet, Status: StatusOK, Value: []byte("x")},
			{Kind: SubGet, Status: StatusNotFound},
			{Kind: SubPut, Status: StatusOK},
			{Kind: SubAdd, Status: StatusOK, Sum: 99},
		}},
		{Op: OpAtomic, ID: 9, Status: StatusBusy},
		{Op: OpStats, ID: 10, Stats: []ShardStats{{
			Shard: 0, Engine: "norec", Quota: 4, SettledQuota: 2,
			QuotaMoves: 5, Commits: 100, Aborts: 10, Escalations: 1,
			Panics: 2, SuccessNs: 12345, AbortNs: 678, Delta: 0.25,
			Keys: 50, QuotaEvents: 5, Repartitions: 3,
		}}},
		{Op: OpStats, ID: 11, Stats: []ShardStats{{
			Shard: 1, Engine: "tl2", Quota: 8, SettledQuota: 8,
			Commits: 7, Delta: 0.5, Keys: 3,
			Groups: 4, GroupOps: 64, QueueHighWater: 16,
			WalAppends: 4, WalBytes: 4096, Fsyncs: 3,
			SnapshotAgeSec: 17, ReplayedRecords: 1000,
		}}},
		{Op: OpStats, ID: 12, Stats: []ShardStats{{
			Engine: "norec", SnapshotAgeSec: SnapshotNever,
		}}},
	}
	for _, resp := range resps {
		got := roundTripResponse(t, resp)
		if len(resp.Value) == 0 {
			resp.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(resp, got) {
			t.Errorf("%v: round trip\n got %+v\nwant %+v", resp.Op, got, resp)
		}
	}
}

func TestStatsNaNDelta(t *testing.T) {
	resp := roundTripResponse(t, &Response{
		Op: OpStats, ID: 1,
		Stats: []ShardStats{{Engine: "tl2", Delta: math.NaN()}},
	})
	if !math.IsNaN(resp.Stats[0].Delta) {
		t.Errorf("NaN delta decoded as %v", resp.Stats[0].Delta)
	}
}

// TestOldVersionRequestDecode: version-1 request frames have the identical
// layout and must keep parsing after the version-2 bump.
func TestOldVersionRequestDecode(t *testing.T) {
	reqs := []*Request{
		{Op: OpGet, ID: 2, Key: 0xdeadbeef},
		{Op: OpPut, ID: 3, Key: 7, Value: []byte("hello")},
		{Op: OpAtomic, ID: 7, Subs: []Sub{{Kind: SubAdd, Key: 4, Delta: 42}}},
		{Op: OpStats, ID: 8, Shard: AllShards},
	}
	for _, req := range reqs {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		frame[4] = 1 // downgrade the version byte; the layout is unchanged
		got, err := ReadRequest(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%v as v1: %v", req.Op, err)
		}
		if len(req.Value) == 0 {
			req.Value, got.Value = nil, nil
		}
		if !reflect.DeepEqual(req, got) {
			t.Errorf("%v as v1:\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

// TestOldVersionStatsDecode: a version-1 STATS response (no durability
// fields) must decode with those fields zero.
func TestOldVersionStatsDecode(t *testing.T) {
	want := ShardStats{
		Shard: 2, Engine: "norec", Quota: 4, SettledQuota: 2,
		QuotaMoves: 5, Commits: 100, Aborts: 10, Escalations: 1,
		Panics: 2, SuccessNs: 12345, AbortNs: 678, Delta: 0.25,
		Keys: 50, QuotaEvents: 5, Repartitions: 3,
		Groups: 6, GroupOps: 60, QueueHighWater: 12,
	}
	stamped := want
	stamped.WalAppends, stamped.WalBytes, stamped.Fsyncs = 9, 999, 9
	stamped.SnapshotAgeSec, stamped.ReplayedRecords = 3, 33
	frame, err := AppendResponse(nil, &Response{Op: OpStats, ID: 1, Stats: []ShardStats{stamped}})
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 frame as its v1 equivalent: drop the five trailing
	// durability u64s and downgrade the version byte.
	const durBytes = 5 * 8
	frame = frame[:len(frame)-durBytes]
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	frame[4] = 1
	got, err := ReadResponse(bytes.NewReader(frame))
	if err != nil {
		t.Fatalf("v1 STATS decode: %v", err)
	}
	if len(got.Stats) != 1 || !reflect.DeepEqual(got.Stats[0], want) {
		t.Errorf("v1 STATS decode:\n got %+v\nwant %+v", got.Stats, want)
	}
}

func TestTypedErrors(t *testing.T) {
	err := StatusBusy.Err(nil)
	if !errors.Is(err, ErrBusy) {
		t.Errorf("StatusBusy error does not match ErrBusy")
	}
	if errors.Is(err, ErrNotFound) {
		t.Errorf("StatusBusy error matches ErrNotFound")
	}
	if StatusOK.Err(nil) != nil {
		t.Errorf("StatusOK produced an error")
	}
	mismatch := StatusCASMismatch.Err([]byte("current"))
	var werr *Error
	if !errors.As(mismatch, &werr) || string(werr.Detail) != "current" {
		t.Errorf("CAS mismatch detail lost: %v", mismatch)
	}
}

func TestFramingViolations(t *testing.T) {
	// Oversized frame header.
	big := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadRequest(bytes.NewReader(big)); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized frame: got %v, want ErrProtocol", err)
	}
	// Truncated payload.
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpGet, ID: 1, Key: 2}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadRequest(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame parsed")
	}
	// Wrong version byte.
	frame, err := AppendRequest(nil, &Request{Op: OpPing, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame[4] = 99 // version byte follows the 4-byte length
	if _, err := ReadRequest(bytes.NewReader(frame)); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad version: got %v, want ErrProtocol", err)
	}
	// Clean EOF between frames.
	if _, err := ReadRequest(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
	// Response opcode without the response flag.
	respFrame, err := AppendResponse(nil, &Response{Op: OpPing, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	respFrame[5] &^= 0x80
	if _, err := ReadResponse(bytes.NewReader(respFrame)); !errors.Is(err, ErrProtocol) {
		t.Errorf("unflagged response: got %v, want ErrProtocol", err)
	}
}

// FuzzParseRequest asserts the request parser never panics and never
// accepts trailing garbage.
func FuzzParseRequest(f *testing.F) {
	seed := []*Request{
		{Op: OpPing, ID: 1},
		{Op: OpPut, ID: 2, Key: 3, Value: []byte("abc")},
		{Op: OpCAS, ID: 3, Key: 4, OldValue: []byte("o"), Value: []byte("n")},
		{Op: OpAtomic, ID: 4, Subs: []Sub{{Kind: SubAdd, Key: 1, Delta: 2}}},
		{Op: OpStats, ID: 5, Shard: AllShards},
	}
	for _, req := range seed {
		frame, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:]) // payload without the length prefix
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := ParseRequest(payload)
		if err != nil {
			return
		}
		// Whatever parsed must re-encode and re-parse identically.
		frame, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("reencode of parsed request failed: %v", err)
		}
		again, err := ParseRequest(frame[4:])
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("parse/encode not stable:\n%+v\n%+v", req, again)
		}
	})
}
