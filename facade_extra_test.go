package votm_test

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"votm"
)

func TestPublicAPITL2Engine(t *testing.T) {
	ctx := context.Background()
	rt := votm.New(votm.Config{Threads: 4, Engine: votm.TL2})
	v, err := rt.CreateView(1, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.EngineName() != "TL2" {
		t.Fatalf("engine = %s", v.EngineName())
	}
	counter, _ := v.Alloc(1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread()
			for i := 0; i < 150; i++ {
				_ = v.Atomic(ctx, th, func(tx votm.Tx) error {
					tx.Store(counter, tx.Load(counter)+1)
					return nil
				})
			}
		}()
	}
	wg.Wait()
	if got := v.Heap().Load(counter); got != 600 {
		t.Errorf("counter = %d, want 600", got)
	}
}

func TestPublicAPIMixedEnginesPerView(t *testing.T) {
	ctx := context.Background()
	rt := votm.New(votm.Config{Threads: 2, Engine: votm.NOrec})
	v1, err := rt.CreateViewWithEngine(1, 16, 2, votm.OrecEagerRedo)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := rt.CreateViewWithEngine(2, 16, 2, votm.TL2)
	if err != nil {
		t.Fatal(err)
	}
	v3, _ := rt.CreateView(3, 16, 2) // runtime default
	names := []string{v1.EngineName(), v2.EngineName(), v3.EngineName()}
	want := []string{"OrecEagerRedo", "TL2", "NOrec"}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("view %d engine = %s, want %s", i+1, names[i], want[i])
		}
	}
	th := rt.RegisterThread()
	for _, v := range []*votm.View{v1, v2, v3} {
		if err := v.Atomic(ctx, th, func(tx votm.Tx) error {
			tx.Store(0, 7)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPISwitchEngine(t *testing.T) {
	ctx := context.Background()
	rt := votm.New(votm.Config{Threads: 2})
	v, _ := rt.CreateView(1, 16, 2)
	th := rt.RegisterThread()
	_ = v.Atomic(ctx, th, func(tx votm.Tx) error { tx.Store(0, 5); return nil })
	if err := v.SwitchEngine(ctx, votm.TL2); err != nil {
		t.Fatal(err)
	}
	var got uint64
	_ = v.AtomicRead(ctx, th, func(tx votm.Tx) error { got = tx.Load(0); return nil })
	if got != 5 {
		t.Errorf("data lost across switch: %d", got)
	}
}

func TestPublicAPIQuotaTrace(t *testing.T) {
	rec := votm.NewQuotaRecorder(0)
	rt := votm.New(votm.Config{Threads: 8, QuotaTrace: rec.Hook()})
	v, _ := rt.CreateView(1, 8, 8)
	v.SetQuota(2)
	v.SetQuota(8)
	if rec.Len() != 2 {
		t.Fatalf("recorded %d events, want 2", rec.Len())
	}
	tl := rec.Timeline(1)
	if !strings.Contains(tl, "-> 2") || !strings.Contains(tl, "-> 8") {
		t.Errorf("timeline = %q", tl)
	}
	ev := rec.Events()
	if ev[0].ViewID != 1 || ev[0].From != 8 || ev[0].To != 2 {
		t.Errorf("event = %+v", ev[0])
	}
}

func TestPublicAPIRecommendEngine(t *testing.T) {
	// The three regimes of the recommender through the facade.
	hotShort := votm.RecommendEngine(votm.TMProfile{
		Threads: 16, MeanReads: 2, MeanWrites: 2, AbortRate: 0.6})
	if hotShort.QuotaHint != 1 {
		t.Errorf("hot short: %+v", hotShort)
	}
	memHeavy := votm.RecommendEngine(votm.NewTMProfile(16,
		votm.Totals{Commits: 1000, Aborts: 10}, 0.01, 4, 20))
	if memHeavy.Engine != votm.OrecEagerRedo {
		t.Errorf("memory heavy: %+v", memHeavy)
	}
	quiet := votm.RecommendEngine(votm.NewTMProfile(4,
		votm.Totals{Commits: 1000}, math.NaN(), 3, 1))
	if quiet.Engine != votm.NOrec {
		t.Errorf("quiet: %+v", quiet)
	}
}

func TestPublicAPIDeltaHelper(t *testing.T) {
	tot := votm.Totals{SuccessNs: 100, AbortNs: 300}
	if got := tot.Delta(4); got != 1.0 {
		t.Errorf("Delta = %v", got)
	}
}

func TestPublicAPIDeltaSampler(t *testing.T) {
	ctx := context.Background()
	rt := votm.New(votm.Config{Threads: 2})
	v, _ := rt.CreateView(1, 16, 2)
	th := rt.RegisterThread()
	s := votm.StartDeltaSampler(v, time.Millisecond)
	for i := 0; i < 50; i++ {
		_ = v.Atomic(ctx, th, func(tx votm.Tx) error {
			tx.Store(0, tx.Load(0)+1)
			return nil
		})
	}
	time.Sleep(5 * time.Millisecond)
	series := s.Stop()
	if len(series) == 0 {
		t.Fatal("no samples")
	}
	last := series[len(series)-1]
	if last.Commits != 50 || last.Quota != 2 {
		t.Errorf("last sample = %+v", last)
	}
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil || !strings.Contains(sb.String(), "offset_ms") {
		t.Errorf("CSV: %v %q", err, sb.String())
	}
}
